// DVA (variation-aware training) and PM (unary coding) baselines.
#include <gtest/gtest.h>

#include "baselines/dva.h"
#include "baselines/pm.h"
#include "baselines/write_verify.h"
#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

using namespace rdo;
using namespace rdo::baselines;

namespace {

struct Fixture {
  data::SyntheticDataset ds;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 5;
    spec.train_per_class = 30;
    spec.test_per_class = 12;
    spec.seed = 21;
    ds = data::make_synthetic(spec);
  }

  nn::Sequential make_net(std::uint64_t seed) const {
    nn::Rng rng(seed);
    nn::Sequential net;
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 24, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(24, 5, rng);
    return net;
  }

  void pretrain(nn::Sequential& net, std::uint64_t seed) const {
    nn::Rng rng(seed);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 8; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

namespace {

/// Mean training loss under `draws` independent multiplicative weight
/// perturbations (the quantity DVA's objective minimizes).
float noisy_loss(nn::Sequential& net, const nn::DataView& data, double sigma,
                 std::uint64_t seed, int draws) {
  std::vector<nn::Layer*> all;
  collect_layers(&net, all);
  std::vector<nn::MatrixOp*> ops;
  for (nn::Layer* l : all) {
    if (auto* op = dynamic_cast<nn::MatrixOp*>(l)) ops.push_back(op);
  }
  rram::VariationModel var{sigma, 0.0};
  double total = 0.0;
  for (int d = 0; d < draws; ++d) {
    nn::Rng rng = nn::Rng(seed).split(static_cast<std::uint64_t>(d));
    std::vector<std::vector<float>> backup(ops.size());
    for (std::size_t k = 0; k < ops.size(); ++k) {
      nn::MatrixOp* op = ops[k];
      for (std::int64_t r = 0; r < op->fan_in(); ++r) {
        for (std::int64_t c = 0; c < op->fan_out(); ++c) {
          const float w = op->weight_at(r, c);
          backup[k].push_back(w);
          op->set_weight_at(
              r, c, w * static_cast<float>(var.sample_factor(rng)));
        }
      }
    }
    total += nn::evaluate(net, data, 64).loss;
    for (std::size_t k = 0; k < ops.size(); ++k) {
      nn::MatrixOp* op = ops[k];
      std::size_t i = 0;
      for (std::int64_t r = 0; r < op->fan_in(); ++r) {
        for (std::int64_t c = 0; c < op->fan_out(); ++c, ++i) {
          op->set_weight_at(r, c, backup[k][i]);
        }
      }
    }
  }
  return static_cast<float>(total / draws);
}

}  // namespace

TEST(Dva, TrainingLearnsDespiteInjectedNoise) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(1);
  DvaOptions opt;
  opt.epochs = 8;
  opt.variation.sigma = 0.3;
  const float noisy_acc = dva_train(net, f.ds.train(), opt);
  EXPECT_GT(noisy_acc, 0.4f);  // learning through the noise
  // Clean evaluation is better still.
  EXPECT_GT(nn::evaluate(net, f.ds.train(), 64).accuracy, noisy_acc - 0.05f);
}

TEST(Dva, ReducesExpectedLossUnderWeightNoise) {
  // The mechanism claim: DVA fine-tuning flattens the minimum, lowering
  // the expected loss under multiplicative weight noise.
  auto& f = fixture();
  nn::Sequential net = f.make_net(2);
  f.pretrain(net, 3);
  const float before = noisy_loss(net, f.ds.train(), 0.4, 99, 8);
  DvaOptions dopt;
  dopt.epochs = 6;
  dopt.lr = 0.02f;
  dopt.variation.sigma = 0.4;
  dva_train(net, f.ds.train(), dopt);
  const float after = noisy_loss(net, f.ds.train(), 0.4, 99, 8);
  EXPECT_LT(after, before);
}

TEST(Dva, CleanWeightsRestoredAfterEachBatch) {
  // After dva_train, weights are finite and the net evaluates sanely
  // (catches forgetting to restore the perturbation).
  auto& f = fixture();
  nn::Sequential net = f.make_net(4);
  f.pretrain(net, 5);
  const float before = nn::evaluate(net, f.ds.test(), 32).accuracy;
  DvaOptions opt;
  opt.epochs = 2;
  opt.variation.sigma = 0.2;
  opt.lr = 0.01f;
  dva_train(net, f.ds.train(), opt);
  const float after = nn::evaluate(net, f.ds.test(), 32).accuracy;
  EXPECT_GT(after, before - 0.15f);
}

TEST(Pm, ZeroVariationIsNearExact) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(6);
  f.pretrain(net, 7);
  const float ideal = nn::evaluate(net, f.ds.test(), 32).accuracy;
  PmOptions opt;
  opt.cell = {rram::CellKind::MLC2, 200.0};
  opt.variation.sigma = 0.0;
  const float acc = run_pm(net, opt, f.ds.test(), 1);
  EXPECT_NEAR(acc, ideal, 0.04f);
}

TEST(Pm, RestoresWeights) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(8);
  f.pretrain(net, 9);
  const float before = nn::evaluate(net, f.ds.test(), 32).accuracy;
  PmOptions opt;
  opt.variation.sigma = 0.8;
  run_pm(net, opt, f.ds.test(), 2);
  const float after = nn::evaluate(net, f.ds.test(), 32).accuracy;
  EXPECT_FLOAT_EQ(before, after);
}

TEST(Pm, UnaryCodingBeatsBinaryUnderVariation) {
  // The variance-averaging claim: PM's hybrid-unary MLC coding should
  // retain more accuracy than plain binary SLC coding at the same sigma.
  auto& f = fixture();
  nn::Sequential net = f.make_net(10);
  f.pretrain(net, 11);

  PmOptions popt;
  popt.variation.sigma = 0.6;
  popt.seed = 13;
  const float pm_acc = run_pm(net, popt, f.ds.test(), 3);

  core::DeployOptions o;
  o.scheme = core::Scheme::Plain;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.6;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 4;
  o.seed = 13;
  const float plain_acc =
      core::run_scheme(net, o, f.ds.train(), f.ds.test(), 3).mean_accuracy;
  EXPECT_GT(pm_acc, plain_acc);
}

TEST(Pm, CellsPerWeightAccounting) {
  PmOptions opt;
  EXPECT_EQ(pm_cells_per_weight(opt), 10);
  opt.unary_cells = 6;
  opt.binary_cells = 2;
  EXPECT_EQ(pm_cells_per_weight(opt), 8);
}

TEST(Pm, PriorityMappingHelpsOnlyWithDdv) {
  // With a DDV component, priority mapping should not hurt; with pure CCV
  // it is a no-op by construction (the paper's critique).
  auto& f = fixture();
  nn::Sequential net = f.make_net(12);
  f.pretrain(net, 13);

  PmOptions ddv_on;
  ddv_on.variation.sigma = 0.7;
  ddv_on.variation.ddv_fraction = 0.8;
  ddv_on.priority_mapping = true;
  ddv_on.seed = 17;
  PmOptions ddv_off = ddv_on;
  ddv_off.priority_mapping = false;
  const float with_pm = run_pm(net, ddv_on, f.ds.test(), 3);
  const float without_pm = run_pm(net, ddv_off, f.ds.test(), 3);
  EXPECT_GE(with_pm, without_pm - 0.03f);

  // Pure CCV: mapping decision changes nothing (same RNG stream makes
  // them bit-identical).
  PmOptions ccv_on;
  ccv_on.variation.sigma = 0.7;
  ccv_on.priority_mapping = true;
  ccv_on.seed = 19;
  PmOptions ccv_off = ccv_on;
  ccv_off.priority_mapping = false;
  EXPECT_FLOAT_EQ(run_pm(net, ccv_on, f.ds.test(), 2),
                  run_pm(net, ccv_off, f.ds.test(), 2));
}

TEST(Pm, RejectsInsufficientUnaryCapacity) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(20);
  PmOptions opt;
  opt.unary_cells = 3;  // 3 cells x 3 states = 9 < msb_max 15
  EXPECT_THROW(run_pm(net, opt, f.ds.test(), 1), std::invalid_argument);
}

TEST(WriteVerify, ConvergesWithinTolerance) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  WriteVerifyOptions opt;
  opt.tolerance = 0.1;
  opt.max_pulses = 50;
  nn::Rng rng(1);
  int converged = 0;
  for (int i = 0; i < 100; ++i) {
    const WriteVerifyResult r = write_verify(prog, 200, opt, rng);
    if (r.converged) {
      ++converged;
      EXPECT_LE(std::fabs(r.crw - 200.0), 0.1 * 200.0);
    }
    EXPECT_GE(r.pulses, 1);
    EXPECT_LE(r.pulses, 50);
  }
  EXPECT_GT(converged, 80);  // generous budget converges nearly always
}

TEST(WriteVerify, ZeroVariationConvergesInOnePulse) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.0, 0.0});
  WriteVerifyOptions opt;
  nn::Rng rng(2);
  const WriteVerifyResult r = write_verify(prog, 123, opt, rng);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.pulses, 1);
  EXPECT_NEAR(r.crw, 123.0, 1e-9);
}

TEST(WriteVerify, TighterToleranceNeedsMorePulses) {
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.5, 0.0});
  WriteVerifyOptions loose;
  loose.tolerance = 0.3;
  loose.max_pulses = 100;
  WriteVerifyOptions tight = loose;
  tight.tolerance = 0.05;
  nn::Rng rng1(3), rng2(3);
  long long p_loose = 0, p_tight = 0;
  for (int i = 0; i < 200; ++i) {
    p_loose += write_verify(prog, 180, loose, rng1).pulses;
    p_tight += write_verify(prog, 180, tight, rng2).pulses;
  }
  EXPECT_GT(p_tight, p_loose);
}

TEST(WriteVerify, DeploymentRecoversAccuracyAtPulseCost) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(30);
  f.pretrain(net, 31);
  const float ideal = nn::evaluate(net, f.ds.test(), 64).accuracy;
  rram::WeightProgrammer prog({rram::CellKind::SLC, 200.0}, 8, {0.4, 0.0});

  WriteVerifyOptions one_shot;
  one_shot.max_pulses = 1;  // degenerates to plain programming
  const WvDeployResult plain =
      run_write_verify(net, prog, one_shot, f.ds.test(), 3, 5);

  WriteVerifyOptions budget;
  budget.tolerance = 0.05;
  budget.max_pulses = 20;
  const WvDeployResult wv =
      run_write_verify(net, prog, budget, f.ds.test(), 3, 5);

  EXPECT_GT(wv.mean_accuracy, plain.mean_accuracy + 0.1f);
  EXPECT_GT(wv.mean_accuracy, ideal - 0.15f);
  EXPECT_GT(wv.mean_pulses, 1.5);  // the lifetime cost the paper cites
  EXPECT_NEAR(plain.mean_pulses, 1.0, 1e-9);
  // Weights restored.
  EXPECT_FLOAT_EQ(nn::evaluate(net, f.ds.test(), 64).accuracy, ideal);
}

TEST(Pm, DegradesGracefullyWithSigma) {
  auto& f = fixture();
  nn::Sequential net = f.make_net(14);
  f.pretrain(net, 15);
  PmOptions lo;
  lo.variation.sigma = 0.2;
  PmOptions hi;
  hi.variation.sigma = 1.0;
  const float a_lo = run_pm(net, lo, f.ds.test(), 2);
  const float a_hi = run_pm(net, hi, f.ds.test(), 2);
  EXPECT_GE(a_lo, a_hi - 0.02f);
}
