// Deterministic thread-pool execution layer (nn/parallel.h): coverage,
// nesting and exception semantics of parallel_for, bitwise determinism
// of the parallel GEMM kernels, and the headline guarantee — parallel
// Monte-Carlo deployment trials and batched device-level inference are
// bit-identical to the serial path for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/gemm.h"
#include "nn/optimizer.h"
#include "nn/parallel.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/trainer.h"
#include "sim/device_backend.h"

using namespace rdo;

namespace {

/// RAII thread-count override so a failing assertion cannot leak a
/// forced pool size into other tests.
struct ThreadGuard {
  explicit ThreadGuard(int n) { nn::set_thread_count(n); }
  ~ThreadGuard() { nn::set_thread_count(0); }
};

}  // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard(4);
  const std::int64_t n = 1237;  // prime: uneven chunking
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  nn::parallel_for(n, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsGrainAndEmptyRange) {
  ThreadGuard guard(4);
  int calls = 0;
  nn::parallel_for(
      10, [&](std::int64_t b, std::int64_t e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 10);
        ++calls;
      },
      /*grain=*/10);  // n <= grain: must run inline as one chunk
  EXPECT_EQ(calls, 1);
  nn::parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);  // empty range: body never invoked
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard(4);
  std::atomic<int> inner_total{0};
  EXPECT_FALSE(nn::in_parallel_region());
  nn::parallel_for(8, [&](std::int64_t b, std::int64_t e) {
    EXPECT_TRUE(nn::in_parallel_region());
    for (std::int64_t i = b; i < e; ++i) {
      nn::parallel_for(4, [&](std::int64_t ib, std::int64_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_FALSE(nn::in_parallel_region());
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      nn::parallel_for(64,
                       [&](std::int64_t b, std::int64_t) {
                         if (b >= 16) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> total{0};
  nn::parallel_for(16, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelGemm, BitIdenticalAcrossThreadCounts) {
  // Odd sizes so chunk boundaries fall mid-structure; zeros exercise the
  // sparsity skip.
  const std::int64_t m = 97, k = 63, n = 41;
  nn::Rng rng(123);
  std::vector<float> a(static_cast<std::size_t>(m * k)),
      at(static_cast<std::size_t>(k * m)), b(static_cast<std::size_t>(k * n)),
      bt(static_cast<std::size_t>(n * k));
  for (auto& v : a) {
    v = rng.uniform(0.0, 1.0) < 0.3
            ? 0.0f
            : static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& v : at) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : bt) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto run_all = [&](std::vector<float>& c1, std::vector<float>& c2,
                           std::vector<float>& c3) {
    c1.assign(static_cast<std::size_t>(m * n), 0.5f);
    c2.assign(static_cast<std::size_t>(m * n), 0.5f);
    c3.assign(static_cast<std::size_t>(m * n), 0.5f);
    nn::gemm_accumulate(a.data(), b.data(), c1.data(), m, k, n);
    nn::gemm_at_b_accumulate(at.data(), b.data(), c2.data(), m, k, n);
    nn::gemm_a_bt_accumulate(a.data(), bt.data(), c3.data(), m, k, n);
  };

  std::vector<float> s1, s2, s3;
  {
    ThreadGuard guard(1);
    run_all(s1, s2, s3);
  }
  for (int threads : {2, 4, 7}) {
    ThreadGuard guard(threads);
    std::vector<float> p1, p2, p3;
    run_all(p1, p2, p3);
    EXPECT_EQ(0, std::memcmp(s1.data(), p1.data(), s1.size() * sizeof(float)))
        << "gemm_accumulate differs at " << threads << " threads";
    EXPECT_EQ(0, std::memcmp(s2.data(), p2.data(), s2.size() * sizeof(float)))
        << "gemm_at_b_accumulate differs at " << threads << " threads";
    EXPECT_EQ(0, std::memcmp(s3.data(), p3.data(), s3.size() * sizeof(float)))
        << "gemm_a_bt_accumulate differs at " << threads << " threads";
  }
}

namespace {

/// Small trained MLP + dataset for the deployment determinism tests.
struct DeployFixture {
  data::SyntheticDataset ds;
  nn::Sequential net;

  DeployFixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 8;
    spec.classes = 4;
    spec.train_per_class = 20;
    spec.test_per_class = 8;
    spec.seed = 51;
    ds = data::make_synthetic(spec);
    nn::Rng rng(14);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(64, 16, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(16, 4, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 5; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }
};

DeployFixture& deploy_fixture() {
  static DeployFixture f;
  return f;
}

core::DeployOptions deploy_opts(rram::CellKind cell) {
  core::DeployOptions o;
  o.scheme = core::Scheme::VAWOStarPWT;  // exercises VAWO*, PWT, evaluate
  o.offsets.m = 8;
  o.cell = {cell, 200.0};
  o.variation.sigma = 0.4;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 4;
  o.grad_samples = 64;
  o.pwt.epochs = 1;
  o.pwt.max_samples = 48;
  o.seed = 77;
  return o;
}

}  // namespace

TEST(Determinism, ParallelTrialsMatchSerialRunSchemeSlcAndMlc) {
  // The headline guarantee: same seed, 1 vs N threads, identical
  // per-trial deployment accuracies (exact float equality) — for SLC and
  // MLC2 cells. Each trial's devices are drawn from
  // Rng(seed).split(trial)-derived streams, never from shared state.
  auto& f = deploy_fixture();
  const int repeats = 2;
  for (rram::CellKind cell : {rram::CellKind::SLC, rram::CellKind::MLC2}) {
    const core::DeployOptions o = deploy_opts(cell);
    core::SchemeResult serial, par1, par4;
    {
      ThreadGuard guard(1);
      serial = core::run_scheme(f.net, o, f.ds.train(), f.ds.test(), repeats);
      par1 = core::run_scheme_parallel(f.net, o, f.ds.train(), f.ds.test(),
                                       repeats);
    }
    {
      ThreadGuard guard(4);
      par4 = core::run_scheme_parallel(f.net, o, f.ds.train(), f.ds.test(),
                                       repeats);
    }
    ASSERT_EQ(serial.per_cycle.size(), static_cast<std::size_t>(repeats));
    ASSERT_EQ(par1.per_cycle.size(), static_cast<std::size_t>(repeats));
    ASSERT_EQ(par4.per_cycle.size(), static_cast<std::size_t>(repeats));
    for (int t = 0; t < repeats; ++t) {
      const auto i = static_cast<std::size_t>(t);
      EXPECT_EQ(serial.per_cycle[i], par1.per_cycle[i])
          << "trial " << t << " (1 thread) diverged from serial";
      EXPECT_EQ(serial.per_cycle[i], par4.per_cycle[i])
          << "trial " << t << " (4 threads) diverged from serial";
    }
    EXPECT_EQ(serial.mean_accuracy, par4.mean_accuracy);
  }
}

TEST(Determinism, DeviceLevelEvaluateMatchesAcrossThreadCounts) {
  // Batched device-level inference: a small CNN exercises the parallel
  // im2col-row dispatch, the shared max-pool kernel and per-image
  // evaluate parallelism. Same executor, 1 vs 4 threads, identical
  // logits and accuracy.
  data::SyntheticSpec spec = data::mnist_like();
  spec.height = spec.width = 8;
  spec.classes = 4;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  spec.seed = 61;
  const data::SyntheticDataset ds = data::make_synthetic(spec);
  nn::Rng rng(21);
  nn::Sequential net;
  net.emplace<nn::Conv2D>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2D>(2);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(64, 4, rng);
  nn::SGD opt(net.params(), 0.05f);
  for (int e = 0; e < 3; ++e) {
    nn::train_epoch(net, opt, ds.train(), 16, rng);
  }

  core::DeployOptions o;
  o.scheme = core::Scheme::VAWOStar;
  o.offsets.m = 8;
  o.cell = {rram::CellKind::MLC2, 200.0};
  o.variation.sigma = 0.3;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 4;
  o.grad_samples = 32;
  o.seed = 19;
  sim::DeviceSimOptions geom;
  geom.xbar_rows = 16;
  geom.xbar_cols = 32;
  geom.active_wordlines = 4;
  const core::DeploymentPlan plan = core::compile_plan(net, o, ds.train());
  sim::DeviceSimBackend exec(plan, net, geom);
  exec.program_cycle(0);

  std::vector<double> x(64);
  const float* img = ds.test().images->data();
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = img[i];

  float acc1 = 0.0f, acc4 = 0.0f;
  std::vector<double> logits1, logits4;
  {
    ThreadGuard guard(1);
    logits1 = exec.forward_image(x, 1, 8, 8);
    acc1 = exec.evaluate(ds.test());
  }
  {
    ThreadGuard guard(4);
    logits4 = exec.forward_image(x, 1, 8, 8);
    acc4 = exec.evaluate(ds.test());
  }
  ASSERT_EQ(logits1.size(), logits4.size());
  for (std::size_t i = 0; i < logits1.size(); ++i) {
    EXPECT_EQ(logits1[i], logits4[i]) << "logit " << i;
  }
  EXPECT_EQ(acc1, acc4);
}

TEST(PoolStats, ClassifiesInlineAndDispatchedLoops) {
  nn::reset_pool_stats();
  const nn::PoolStats zero = nn::pool_stats();
  EXPECT_EQ(zero.parallel_loops, 0);
  EXPECT_EQ(zero.inline_loops, 0);
  EXPECT_EQ(zero.chunks_executed, 0);
  EXPECT_EQ(zero.chunks_stolen, 0);

  {
    ThreadGuard guard(4);
    nn::parallel_for(256, [](std::int64_t, std::int64_t) {}, /*grain=*/1);
  }
  nn::PoolStats s = nn::pool_stats();
  EXPECT_EQ(s.parallel_loops, 1);
  EXPECT_EQ(s.inline_loops, 0);
  // chunk = max(1, ceil(256 / (4 threads * 4))) = 16 -> 16 chunks.
  EXPECT_EQ(s.chunks_executed, 16);
  EXPECT_LE(s.chunks_stolen, s.chunks_executed);

  {
    ThreadGuard guard(4);
    // n <= grain runs inline and retires no chunks.
    nn::parallel_for(4, [](std::int64_t, std::int64_t) {}, /*grain=*/10);
  }
  {
    ThreadGuard guard(1);
    // A serial pool runs inline too.
    nn::parallel_for(256, [](std::int64_t, std::int64_t) {}, /*grain=*/1);
  }
  s = nn::pool_stats();
  EXPECT_EQ(s.parallel_loops, 1);
  EXPECT_EQ(s.inline_loops, 2);
  EXPECT_EQ(s.chunks_executed, 16);

  nn::reset_pool_stats();
  const nn::PoolStats cleared = nn::pool_stats();
  EXPECT_EQ(cleared.parallel_loops, 0);
  EXPECT_EQ(cleared.inline_loops, 0);
  EXPECT_EQ(cleared.chunks_executed, 0);
  EXPECT_EQ(cleared.chunks_stolen, 0);
}

TEST(PoolStats, CountersStayConsistentUnderConcurrentLoops) {
  ThreadGuard guard(4);
  nn::reset_pool_stats();
  // Four user threads each dispatch four loops concurrently; the pool is
  // shared, so this exercises the relaxed counters under contention.
  constexpr int kUserThreads = 4;
  constexpr int kLoopsPerThread = 4;
  constexpr std::int64_t kN = 256;  // -> 16 chunks per loop at 4 threads
  std::atomic<std::int64_t> touched{0};
  std::vector<std::thread> users;
  users.reserve(kUserThreads);
  for (int t = 0; t < kUserThreads; ++t) {
    users.emplace_back([&touched] {
      for (int k = 0; k < kLoopsPerThread; ++k) {
        nn::parallel_for(
            kN,
            [&touched](std::int64_t begin, std::int64_t end) {
              touched.fetch_add(end - begin, std::memory_order_relaxed);
            },
            /*grain=*/1);
      }
    });
  }
  for (std::thread& u : users) u.join();

  EXPECT_EQ(touched.load(), kUserThreads * kLoopsPerThread * kN);
  const nn::PoolStats s = nn::pool_stats();
  EXPECT_EQ(s.parallel_loops + s.inline_loops,
            kUserThreads * kLoopsPerThread);
  // Every dispatched loop retires exactly ceil(n / chunk) chunks; chunks
  // never disappear or double-count even with stealing.
  EXPECT_EQ(s.chunks_executed, s.parallel_loops * 16);
  EXPECT_GE(s.chunks_stolen, 0);
  EXPECT_LE(s.chunks_stolen, s.chunks_executed);
  nn::reset_pool_stats();
}
