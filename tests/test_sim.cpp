// Device-level crossbar executor: the hardware-faithful reference path,
// and its equivalence with the effective-weight fast path.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/crossbar_executor.h"

using namespace rdo;
using namespace rdo::sim;
using rdo::nn::Rng;

namespace {

quant::LayerQuant make_lq(std::int64_t rows, std::int64_t cols,
                          std::uint64_t seed) {
  quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = rows;
  lq.cols = cols;
  lq.scale = 0.01f;
  lq.zero = 128;
  Rng rng(seed);
  lq.q.resize(static_cast<std::size_t>(rows * cols));
  for (auto& v : lq.q) v = static_cast<int>(rng.uniform_int(0, 255));
  return lq;
}

ExecutorConfig small_cfg(rram::CellKind kind, double sigma,
                         rram::VariationScope scope, int m = 8,
                         int adc_bits = 0) {
  ExecutorConfig cfg;
  cfg.xbar.rows = 16;
  cfg.xbar.cols = 32;
  cfg.xbar.cell = {kind, 200.0};
  cfg.xbar.variation = {sigma, 0.0, scope};
  cfg.xbar.active_wordlines = 4;
  cfg.xbar.adc_bits = adc_bits;
  cfg.offsets.m = m;
  return cfg;
}

std::vector<double> fast_path(const quant::LayerQuant& lq,
                              const core::VawoResult& assign,
                              const std::vector<double>& crw, int m,
                              int maxw, const std::vector<double>& x) {
  // Effective-weight computation: W_eff = scale * (NRW - zero).
  std::vector<double> y(static_cast<std::size_t>(lq.cols), 0.0);
  for (std::int64_t c = 0; c < lq.cols; ++c) {
    double acc = 0.0;
    for (std::int64_t r = 0; r < lq.rows; ++r) {
      const std::size_t gi =
          static_cast<std::size_t>(core::group_of_row(r, m) * lq.cols + c);
      const double v = crw[static_cast<std::size_t>(r * lq.cols + c)];
      const double b = assign.offsets[gi];
      const double nrw =
          assign.complemented[gi] ? static_cast<double>(maxw) - v - b
                                  : v + b;
      acc += x[static_cast<std::size_t>(r)] * lq.scale * (nrw - lq.zero);
    }
    y[static_cast<std::size_t>(c)] = acc;
  }
  return y;
}

}  // namespace

TEST(Sim, RejectsMisalignedGranularity) {
  const auto lq = make_lq(16, 4, 1);
  const auto assign = core::plain_layer(lq, 6);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight, 6);
  Rng rng(2);
  EXPECT_THROW(CrossbarLayerExecutor(lq, assign, cfg, rng),
               std::invalid_argument);
}

TEST(Sim, IdealDevicesReproduceIntegerMatrixProduct) {
  const auto lq = make_lq(16, 4, 3);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight);
  Rng rng(4);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  Rng xr(5);
  std::vector<double> x(16);
  for (auto& v : x) v = xr.uniform(0.0, 1.0);
  const auto y = exec.forward(x);
  for (std::int64_t c = 0; c < 4; ++c) {
    double expect = 0.0, sum_x = 0.0;
    for (std::int64_t r = 0; r < 16; ++r) {
      expect += x[static_cast<std::size_t>(r)] * lq.at(r, c);
      sum_x += x[static_cast<std::size_t>(r)];
    }
    expect = lq.scale * (expect - lq.zero * sum_x);
    EXPECT_NEAR(y[static_cast<std::size_t>(c)], expect, 1e-9);
  }
}

TEST(Sim, MeasuredCrwMatchesCtwOnIdealDevices) {
  const auto lq = make_lq(16, 4, 6);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::SLC, 0.0,
                                 rram::VariationScope::PerWeight);
  cfg.xbar.cols = 64;  // 8 SLC cells per weight, 8 weights per row
  Rng rng(7);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  const auto crw = exec.measure_crw();
  for (std::size_t i = 0; i < crw.size(); ++i) {
    EXPECT_NEAR(crw[i], static_cast<double>(lq.q[i]), 1e-9);
  }
}

class SimEquivalence
    : public ::testing::TestWithParam<
          std::tuple<rram::CellKind, rram::VariationScope, bool>> {};

TEST_P(SimEquivalence, DeviceLevelForwardEqualsFastPathOnMeasuredCrws) {
  // The key equivalence: the device-level pipeline (group reads, digital
  // Sum+Multi, complement post-processing, ISAAC shift) equals the
  // effective-weight computation on the measured CRWs — with an ideal ADC,
  // exactly.
  const auto [kind, scope, use_vawo] = GetParam();
  const auto lq = make_lq(24, 4, 8);  // 2 row tiles (16 + 8 rows)
  core::VawoResult assign;
  if (use_vawo) {
    rram::WeightProgrammer prog({kind, 200.0}, 8, {0.5, 0.0, scope});
    const rram::RLut lut = rram::RLut::build_analytic(prog);
    std::vector<double> grads(lq.q.size(), 1.0);
    core::VawoOptions vopt;
    vopt.offsets.m = 8;
    vopt.use_complement = true;
    assign = core::vawo_layer(lq, grads, lut, vopt);
  } else {
    assign = core::plain_layer(lq, 8);
  }
  ExecutorConfig cfg = small_cfg(kind, 0.5, scope);
  if (kind == rram::CellKind::SLC) cfg.xbar.cols = 64;
  Rng rng(9);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  const auto crw = exec.measure_crw();

  Rng xr(10);
  std::vector<double> x(24);
  for (auto& v : x) v = xr.uniform(0.0, 1.0);
  const auto y_device = exec.forward(x);
  const auto y_fast = fast_path(lq, assign, crw, 8, 255, x);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(y_device[static_cast<std::size_t>(c)],
                y_fast[static_cast<std::size_t>(c)],
                1e-6 * std::max(1.0, std::fabs(y_fast[static_cast<std::size_t>(c)])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellsScopesSchemes, SimEquivalence,
    ::testing::Combine(::testing::Values(rram::CellKind::SLC,
                                         rram::CellKind::MLC2),
                       ::testing::Values(rram::VariationScope::PerWeight,
                                         rram::VariationScope::PerCell),
                       ::testing::Bool()));

TEST(Sim, AdcQuantizationBoundsTheFastPathGap) {
  // With a finite ADC the device-level output deviates from the fast path
  // by at most the accumulated per-group quantization error.
  const auto lq = make_lq(16, 4, 11);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.3,
                                 rram::VariationScope::PerWeight, 8,
                                 /*adc_bits=*/8);
  Rng rng(12);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  const auto crw = exec.measure_crw();
  Rng xr(13);
  std::vector<double> x(16);
  for (auto& v : x) v = xr.uniform(0.0, 1.0);
  const auto y_device = exec.forward(x);
  const auto y_fast = fast_path(lq, assign, crw, 8, 255, x);
  // 4 activation groups per VMM, 4 bit-slice columns with radix up to
  // 4^3: worst-case half-step each, times the dequant scale.
  const double full_scale = 4.0 * 3.0;
  const double step = full_scale / 255.0;
  const double radix_sum = 1 + 4 + 16 + 64;
  const double bound = lq.scale * 4 * 0.5 * step * radix_sum + 1e-9;
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_LE(std::fabs(y_device[static_cast<std::size_t>(c)] -
                        y_fast[static_cast<std::size_t>(c)]),
              bound);
  }
}

TEST(Sim, SetOffsetsChangesOutput) {
  const auto lq = make_lq(16, 2, 14);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight);
  Rng rng(15);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  std::vector<double> x(16, 1.0);
  const auto y0 = exec.forward(x);
  std::vector<float> offs(assign.offsets.size(), 5.0f);
  exec.set_offsets(offs);
  const auto y1 = exec.forward(x);
  // b = 5 shared by all groups with sum(x) = 8 per group, 2 groups:
  // integer output rises by 5 * 16; effective by scale * 80.
  EXPECT_NEAR(y1[0] - y0[0], 0.01 * 5 * 16, 1e-6);
}

TEST(Sim, BitSerialEqualsDirectOnQuantizedInputs) {
  // The whole pipeline is linear in x, so streaming input bits and
  // shift-adding the partials reproduces the direct VMM on the quantized
  // inputs exactly (ideal ADC) — ISAAC's compute scheme.
  const auto lq = make_lq(16, 4, 20);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.4,
                                 rram::VariationScope::PerWeight);
  Rng rng(21);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  Rng xr(22);
  std::vector<double> x(16);
  for (auto& v : x) v = xr.uniform(0.0, 1.0);

  const int input_bits = 8;
  const double x_max = 1.0;
  const int levels = (1 << input_bits) - 1;
  std::vector<double> xq(16);
  for (std::size_t i = 0; i < 16; ++i) {
    xq[i] = std::round(x[i] * levels) / levels;
  }
  const auto y_serial = exec.forward_bit_serial(x, input_bits, x_max);
  const auto y_direct = exec.forward(xq);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(y_serial[static_cast<std::size_t>(c)],
                y_direct[static_cast<std::size_t>(c)], 1e-6);
  }
}

TEST(Sim, BitSerialRejectsBadFormat) {
  const auto lq = make_lq(16, 2, 23);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight);
  Rng rng(24);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  std::vector<double> x(16, 0.5);
  EXPECT_THROW(exec.forward_bit_serial(x, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(exec.forward_bit_serial(x, 8, 0.0), std::invalid_argument);
}

TEST(Sim, RejectsGroupStraddlingRowTileBoundary) {
  // m = 12 passes the active-wordline check (12 % 4 == 0) but does not
  // divide the 16-row crossbar: the second offset group (rows 12..23)
  // would straddle the tile boundary, splitting one logical offset
  // register across two physical tiles (cf. m = 96 on 128-row crossbars).
  const auto lq = make_lq(32, 4, 25);
  const auto assign = core::plain_layer(lq, 12);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight, 12);
  Rng rng(26);
  EXPECT_THROW(CrossbarLayerExecutor(lq, assign, cfg, rng),
               std::invalid_argument);
}

TEST(Sim, AcceptsWholeTileGroups) {
  // m equal to the tile height (one group per tile column) is legal.
  const auto lq = make_lq(32, 4, 27);
  const auto assign = core::plain_layer(lq, 16);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight, 16);
  Rng rng(28);
  EXPECT_NO_THROW(CrossbarLayerExecutor(lq, assign, cfg, rng));
}

TEST(Sim, BitSerialRejectsNegativeInputs) {
  // The DAC streams unsigned magnitudes; silently clamping a negative
  // activation to 0 would corrupt non-ReLU inputs, so it must throw.
  const auto lq = make_lq(16, 2, 29);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight);
  Rng rng(30);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  std::vector<double> x(16, 0.5);
  x[3] = -0.25;
  EXPECT_THROW(exec.forward_bit_serial(x, 8, 1.0), std::invalid_argument);
  x[3] = 0.25;
  EXPECT_NO_THROW(exec.forward_bit_serial(x, 8, 1.0));
}

TEST(Sim, CrossbarCountMatchesTiling) {
  const auto lq = make_lq(40, 10, 16);
  const auto assign = core::plain_layer(lq, 8);
  ExecutorConfig cfg = small_cfg(rram::CellKind::MLC2, 0.0,
                                 rram::VariationScope::PerWeight);
  // 16 rows/tile -> 3 row tiles; 8 weights per tile row -> 2 col tiles.
  Rng rng(17);
  CrossbarLayerExecutor exec(lq, assign, cfg, rng);
  EXPECT_EQ(exec.crossbar_count(), 6);
}
