// Log-normal variation model statistics and RNG determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "rram/variation.h"

using rdo::nn::Rng;
using rdo::rram::VariationModel;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 5; ++i) {
    if (a.normal() != b.normal()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng a(7);
  Rng c1 = a.split(3), c2 = a.split(3), c3 = a.split(4);
  EXPECT_DOUBLE_EQ(c1.normal(), c2.normal());
  Rng c1b = Rng(7).split(3);
  EXPECT_EQ(c1.seed(), c1b.seed());
  EXPECT_NE(c1.seed(), c3.seed());
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
  }
}

TEST(VariationModel, ClosedFormMoments) {
  VariationModel v{0.5, 0.0};
  EXPECT_NEAR(v.mean_factor(), std::exp(0.125), 1e-12);
  const double s2 = 0.25;
  EXPECT_NEAR(v.var_factor(), (std::exp(s2) - 1.0) * std::exp(s2), 1e-12);
}

TEST(VariationModel, SampleMomentsMatchClosedForm) {
  VariationModel v{0.5, 0.0};
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double f = v.sample_factor(rng);
    sum += f;
    sum2 += f * f;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, v.mean_factor(), 0.02);
  EXPECT_NEAR(var, v.var_factor(), 0.05);
}

TEST(VariationModel, ZeroSigmaIsDeterministicUnity) {
  VariationModel v{0.0, 0.0};
  Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(v.sample_factor(rng), 1.0);
  }
  EXPECT_DOUBLE_EQ(v.mean_factor(), 1.0);
  EXPECT_DOUBLE_EQ(v.var_factor(), 0.0);
}

TEST(VariationModel, DdvSplitPreservesTotalVariance) {
  VariationModel v{0.6, 0.4};
  const double total = v.sigma_ddv() * v.sigma_ddv() +
                       v.sigma_ccv() * v.sigma_ccv();
  EXPECT_NEAR(total, 0.36, 1e-12);
}

TEST(VariationModel, PureDdvHasNoCcv) {
  VariationModel v{0.5, 1.0};
  Rng rng(13);
  EXPECT_DOUBLE_EQ(v.sigma_ccv(), 0.0);
  EXPECT_DOUBLE_EQ(v.sample_ccv_theta(rng), 0.0);
}

TEST(VariationModel, DdvComponentStatistics) {
  VariationModel v{0.5, 0.5};
  Rng rng(14);
  const int n = 100000;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = v.sample_ddv_theta(rng);
    sum2 += t * t;
  }
  EXPECT_NEAR(sum2 / n, 0.125, 0.01);  // variance = 0.5 * 0.25
}

class VariationSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(VariationSigmaSweep, MeanFactorGrowsWithSigma) {
  const double sigma = GetParam();
  VariationModel v{sigma, 0.0};
  EXPECT_GE(v.mean_factor(), 1.0);
  Rng rng(15);
  // Empirical median should be near 1 (log-normal median = 1).
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (v.sample_factor(rng) < 1.0) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VariationSigmaSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));
