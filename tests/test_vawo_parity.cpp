// Fast-vs-reference VAWO parity: the table engine must reproduce the
// literal per-candidate enumeration (core/vawo.cpp group_objective) BIT
// FOR BIT — objective, chosen offset, complement flag and CTWs, including
// tie-breaking — across cell kinds, both objective formulations, ragged
// group sizes and targets outside the representable mean range (the
// invert_mean clamp paths). This is what lets deployment plans stay
// byte-identical while the solver got rewritten.
#include <gtest/gtest.h>

#include <vector>

#include "core/check.h"
#include "core/vawo.h"

using namespace rdo::core;
using namespace rdo::rram;
using rdo::nn::Rng;

namespace {

RLut lut_for(double sigma, CellKind kind) {
  WeightProgrammer p({kind, 200.0}, 8, {sigma, 0.0});
  return RLut::build_analytic(p);
}

struct Config {
  CellKind kind;
  bool use_complement;
  bool penalize_bias;
};

std::vector<Config> all_configs() {
  std::vector<Config> cfgs;
  for (CellKind kind : {CellKind::SLC, CellKind::MLC2}) {
    for (bool comp : {false, true}) {
      for (bool pen : {false, true}) {
        cfgs.push_back({kind, comp, pen});
      }
    }
  }
  return cfgs;
}

/// Solve one group with both engines and require bitwise-equal results.
void expect_group_parity(const std::vector<int>& ntw,
                         const std::vector<double>& grad, const RLut& lut,
                         const VawoOptions& opt, const VawoTable& table) {
  const int levels = lut.max_weight();
  int b_ref = -12345, b_fast = -12345;
  bool c_ref = false, c_fast = false;
  std::vector<int> ctw_ref, ctw_fast;
  const double obj_ref = vawo_solve_group(ntw, grad, lut, levels, opt, b_ref,
                                          c_ref, ctw_ref);
  std::vector<double> g2(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) g2[i] = grad[i] * grad[i];
  const double obj_fast = vawo_solve_group(ntw, g2, table, opt.use_complement,
                                           b_fast, c_fast, ctw_fast);
  // EXPECT_EQ on doubles is exact (==), which is the contract here — no
  // tolerance, the engines must agree to the last bit.
  EXPECT_EQ(obj_ref, obj_fast);
  EXPECT_EQ(b_ref, b_fast);
  EXPECT_EQ(c_ref, c_fast);
  EXPECT_EQ(ctw_ref, ctw_fast);
}

TEST(VawoParity, ExhaustiveSingleWeightSweepCoversEveryTableEntry) {
  // One-weight groups over every NTW value x every configuration: with
  // the full signed 8-bit offset range this exercises every target value
  // the table can index, including both invert_mean clamp regions
  // (target < mean_lo for ntw = 0 at b = offset_max, target > mean_hi for
  // ntw = levels at b = offset_min).
  for (const Config& cfg : all_configs()) {
    const RLut lut = lut_for(0.5, cfg.kind);
    VawoOptions opt;
    opt.use_complement = cfg.use_complement;
    opt.penalize_bias = cfg.penalize_bias;
    const VawoTable table = VawoTable::build(lut, lut.max_weight(),
                                             opt.offsets, opt.penalize_bias);
    for (int w = 0; w <= lut.max_weight(); ++w) {
      expect_group_parity({w}, {1.0}, lut, opt, table);
    }
  }
}

TEST(VawoParity, RandomGroupsAcrossConfigsAndRaggedSizes) {
  Rng rng(2021);
  for (const Config& cfg : all_configs()) {
    const RLut lut = lut_for(0.7, cfg.kind);
    const int levels = lut.max_weight();
    VawoOptions opt;
    opt.use_complement = cfg.use_complement;
    opt.penalize_bias = cfg.penalize_bias;
    const VawoTable table =
        VawoTable::build(lut, levels, opt.offsets, opt.penalize_bias);
    // Ragged tail sizes (1, 3, 5) next to full groups (16), gradients
    // including exact zeros (the g2 = 0 degenerate tie-break case).
    for (int size : {1, 3, 5, 16}) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<int> ntw;
        std::vector<double> grad;
        for (int i = 0; i < size; ++i) {
          ntw.push_back(static_cast<int>(rng.uniform_int(0, levels)));
          grad.push_back(trial == 0 ? 0.0 : rng.uniform(0.0, 1.0));
        }
        expect_group_parity(ntw, grad, lut, opt, table);
      }
    }
  }
}

TEST(VawoParity, TieBreakingMatchesOnIdenticalWeightGroups) {
  // sigma = 0 makes many (offset, ctw) candidates achieve an exactly zero
  // objective; the engines must break those ties identically (first
  // encountered in form-major, offset-ascending order wins).
  for (bool comp : {false, true}) {
    const RLut lut = lut_for(0.0, CellKind::SLC);
    VawoOptions opt;
    opt.use_complement = comp;
    const VawoTable table = VawoTable::build(lut, lut.max_weight(),
                                             opt.offsets, opt.penalize_bias);
    for (int w : {0, 1, 100, 128, 254, 255}) {
      expect_group_parity({w, w, w, w}, {1.0, 1.0, 1.0, 1.0}, lut, opt,
                          table);
    }
  }
}

TEST(VawoParity, NarrowRegistersStressClampPaths) {
  // 4-bit offsets (the ablation's narrowest width): most targets are
  // unreachable and the bias^2 term dominates; also checks a table whose
  // offset range is much smaller than the weight range.
  for (const Config& cfg : all_configs()) {
    const RLut lut = lut_for(1.0, cfg.kind);
    const int levels = lut.max_weight();
    VawoOptions opt;
    opt.offsets.offset_bits = 4;
    opt.use_complement = cfg.use_complement;
    opt.penalize_bias = cfg.penalize_bias;
    const VawoTable table =
        VawoTable::build(lut, levels, opt.offsets, opt.penalize_bias);
    Rng rng(7);
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<int> ntw;
      std::vector<double> grad;
      for (int i = 0; i < 6; ++i) {
        ntw.push_back(static_cast<int>(rng.uniform_int(0, levels)));
        grad.push_back(rng.uniform(0.01, 1.0));
      }
      expect_group_parity(ntw, grad, lut, opt, table);
    }
  }
}

TEST(VawoParity, LayerEnginesProduceIdenticalResults) {
  // Whole-layer parity including a ragged tail group (rows % m != 0), a
  // gradient distribution with dead units (exact zeros, exercising the
  // floor), and both engine selectors of vawo_layer.
  for (const Config& cfg : all_configs()) {
    const RLut lut = lut_for(0.5, cfg.kind);
    rdo::quant::LayerQuant lq;
    lq.bits = 8;
    lq.rows = 21;  // m = 8 -> groups of 8 + 8 + 5
    lq.cols = 4;
    lq.scale = 0.01f;
    lq.zero = 128;
    lq.q.resize(static_cast<std::size_t>(lq.rows * lq.cols));
    std::vector<double> grads(lq.q.size());
    Rng rng(11);
    for (std::size_t i = 0; i < lq.q.size(); ++i) {
      lq.q[i] = static_cast<int>(rng.uniform_int(0, lq.levels()));
      grads[i] = i % 5 == 0 ? 0.0 : rng.uniform(-1.0, 1.0);
    }
    VawoOptions opt;
    opt.offsets.m = 8;
    opt.use_complement = cfg.use_complement;
    opt.penalize_bias = cfg.penalize_bias;

    opt.engine = VawoEngine::kReference;
    const VawoResult ref = vawo_layer(lq, grads, lut, opt);
    opt.engine = VawoEngine::kTable;
    const VawoResult fast = vawo_layer(lq, grads, lut, opt);
    // And through a caller-shared table (the compile_plan path).
    const VawoTable table = VawoTable::build(lut, lq.levels(), opt.offsets,
                                             opt.penalize_bias);
    const VawoResult shared = vawo_layer(lq, grads, lut, opt, &table);

    for (const VawoResult* r : {&fast, &shared}) {
      EXPECT_EQ(ref.total_objective, r->total_objective);
      EXPECT_EQ(ref.ctw, r->ctw);
      EXPECT_EQ(ref.offsets, r->offsets);
      EXPECT_EQ(ref.complemented, r->complemented);
      EXPECT_EQ(ref.groups_per_col, r->groups_per_col);
    }
  }
}

TEST(VawoParity, SharedTableRejectsMismatchedConfiguration) {
  const RLut lut = lut_for(0.5, CellKind::SLC);
  rdo::quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = 8;
  lq.cols = 1;
  lq.q.assign(8, 100);
  std::vector<double> grads(8, 1.0);
  VawoOptions opt;
  opt.offsets.m = 4;
  // Table built for a narrower register than the solve requests.
  OffsetConfig narrow;
  narrow.offset_bits = 4;
  const VawoTable table =
      VawoTable::build(lut, lq.levels(), narrow, opt.penalize_bias);
  EXPECT_THROW(vawo_layer(lq, grads, lut, opt, &table), ContractViolation);
}

TEST(VawoParity, TableEngineRejectsOutOfRangeNtw) {
  // The reference engine clamps out-of-range NTWs through invert_mean;
  // the table engine would index past its rows, so it must fail loudly.
  const RLut lut = lut_for(0.5, CellKind::SLC);
  VawoOptions opt;
  const VawoTable table = VawoTable::build(lut, lut.max_weight(),
                                           opt.offsets, opt.penalize_bias);
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  EXPECT_THROW(
      vawo_solve_group({300}, {1.0}, table, false, b, comp, ctw),
      ContractViolation);
  EXPECT_THROW(vawo_solve_group({-1}, {1.0}, table, false, b, comp, ctw),
               ContractViolation);
}

}  // namespace
