// Worker process for the multi-process cache integration test
// (tests/test_plan_io.cpp, CacheMultiProcess suite). Compiles one fixed
// deterministic deployment under whatever RDO_LUT_CACHE_DIR /
// RDO_PLAN_CACHE_DIR the parent exported, then prints:
//
//   digest <16-hex FNV-1a of the serialized plan bytes>
//   plan_cache_hits <n>
//   plan_cache_misses <n>
//
// Several concurrent workers sharing one cache directory must all print
// the same digest (atomic temp+rename writes, no torn reads), and a
// warm rerun must report a plan cache hit.
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/plan.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "nn/tensor.h"
#include "nn/trainer.h"

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main() {
  rdo::nn::Rng rng(11);
  rdo::nn::Sequential net;
  net.emplace<rdo::nn::Dense>(6, 4, rng);

  rdo::nn::Tensor images({12, 6});
  for (std::int64_t i = 0; i < images.size(); ++i) {
    images[i] = 0.2f * static_cast<float>(i % 7) - 0.6f;
  }
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) labels.push_back(i % 4);
  const rdo::nn::DataView train{&images, &labels};

  rdo::core::DeployOptions opt;
  opt.scheme = rdo::core::Scheme::VAWOStar;
  opt.weight_bits = 4;
  opt.offsets.m = 2;
  opt.offsets.offset_bits = 4;
  opt.variation.sigma = 0.5;
  opt.lut_k_sets = 2;
  opt.lut_j_cycles = 2;
  opt.grad_samples = 12;
  opt.seed = 11;

  try {
    const rdo::core::DeploymentPlan plan =
        rdo::core::compile_plan(net, opt, train);
    const std::uint64_t fp = rdo::core::plan_fingerprint(net, opt, train);
    std::ostringstream bytes(std::ios::binary);
    plan.save(bytes, fp);
    std::printf("digest %016llx\n",
                static_cast<unsigned long long>(fnv1a(bytes.str())));
    std::printf("plan_cache_hits %lld\n",
                static_cast<long long>(plan.compile_stats.plan_cache_hits));
    std::printf("plan_cache_misses %lld\n",
                static_cast<long long>(plan.compile_stats.plan_cache_misses));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cache_stress_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
