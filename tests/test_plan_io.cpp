// DeploymentPlan serialization, the RDO_PLAN_CACHE_DIR / RDO_LUT_CACHE_DIR
// caches and the cross-process-safe temp-file scheme (core/tmpfile.h).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/backend.h"
#include "core/plan.h"
#include "obs/envvar.h"
#include "core/tmpfile.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "obs/recorder.h"
#include "rram/rlut.h"

using namespace rdo;

namespace {

namespace fs = std::filesystem;

/// Scoped environment override (POSIX setenv/unsetenv; tests are
/// single-process and gtest runs cases sequentially).
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    const char* old = rdo::obs::env_knob(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

/// Fresh empty directory under the system temp dir, removed on scope
/// exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("rdo_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_.fetch_add(1)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  static std::atomic<int> counter_;
  fs::path dir_;
};
std::atomic<int> TempDir::counter_{0};

struct Fixture {
  std::unique_ptr<nn::Sequential> net;
  nn::Tensor images;
  std::vector<int> labels;
  core::DeployOptions opt;

  [[nodiscard]] nn::DataView train() const { return {&images, &labels}; }
};

/// Tiny deterministic compile fixture: one Dense layer, VAWO* so the
/// gradient/offset/complement sections are all populated, a cheap LUT
/// protocol.
Fixture make_fixture(double sigma = 0.5) {
  Fixture f;
  nn::Rng rng(11);
  f.net = std::make_unique<nn::Sequential>();
  f.net->emplace<nn::Dense>(6, 4, rng);
  f.images = nn::Tensor({12, 6});
  for (std::int64_t i = 0; i < f.images.size(); ++i) {
    f.images[i] = 0.2f * static_cast<float>(i % 7) - 0.6f;
  }
  for (int i = 0; i < 12; ++i) f.labels.push_back(i % 4);
  f.opt.scheme = core::Scheme::VAWOStar;
  f.opt.weight_bits = 4;
  f.opt.offsets.m = 2;
  f.opt.offsets.offset_bits = 4;
  f.opt.variation.sigma = sigma;
  f.opt.lut_k_sets = 2;
  f.opt.lut_j_cycles = 2;
  f.opt.grad_samples = 12;
  f.opt.seed = 11;
  return f;
}

std::string save_bytes(const core::DeploymentPlan& plan, std::uint64_t fp) {
  std::ostringstream out(std::ios::binary);
  plan.save(out, fp);
  return out.str();
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool has_tmp_files(const fs::path& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().find(".tmp.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

TEST(PlanIo, SaveLoadRoundTripIsByteIdentical) {
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  const std::string bytes = save_bytes(plan, fp);

  std::istringstream in(bytes, std::ios::binary);
  const auto loaded = core::DeploymentPlan::load(in, fp, "roundtrip");
  ASSERT_TRUE(loaded.has_value());

  // save(load(save(p))) must be bit-identical to save(p).
  EXPECT_EQ(save_bytes(*loaded, fp), bytes);

  // Structure survives.
  ASSERT_EQ(loaded->layers.size(), plan.layers.size());
  EXPECT_EQ(loaded->layers[0].lq.q, plan.layers[0].lq.q);
  EXPECT_EQ(loaded->layers[0].assign.ctw, plan.layers[0].assign.ctw);
  EXPECT_EQ(loaded->layers[0].assign.offsets, plan.layers[0].assign.offsets);
  EXPECT_EQ(loaded->lut.max_weight(), plan.lut.max_weight());

  // compile_stats is not serialized: a loaded plan reports zero compile
  // time (that is what a cache hit means).
  EXPECT_EQ(loaded->compile_stats.lut_build_s, 0.0);
  EXPECT_EQ(loaded->compile_stats.prepare_s, 0.0);
  EXPECT_EQ(loaded->compile_stats.vawo_solve_s, 0.0);
}

TEST(PlanIo, LoadedPlanEvaluatesIdenticallyToCompiled) {
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  std::istringstream in(save_bytes(plan, fp), std::ios::binary);
  const auto loaded = core::DeploymentPlan::load(in, fp, "parity");
  ASSERT_TRUE(loaded.has_value());

  core::EffectiveWeightBackend a(plan, *f.net);
  core::EffectiveWeightBackend b(*loaded, *f.net);
  for (std::uint64_t cycle = 0; cycle < 3; ++cycle) {
    a.program_cycle(cycle);
    b.program_cycle(cycle);
    a.tune(f.train());
    b.tune(f.train());
    EXPECT_EQ(a.evaluate(f.train(), 8), b.evaluate(f.train(), 8))
        << "cycle " << cycle;
  }
}

TEST(PlanIo, StaleFingerprintReturnsNulloptWithoutThrowing) {
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  std::istringstream in(save_bytes(plan, fp), std::ios::binary);
  EXPECT_FALSE(
      core::DeploymentPlan::load(in, fp ^ 0xBADF00Dull, "stale").has_value());
}

TEST(PlanIo, TruncationsAndTrailingBytesThrowTyped) {
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  const std::string bytes = save_bytes(plan, fp);

  // Every strict prefix must throw PlanError (the stored fingerprint
  // still matches, so the stale path never masks the truncation).
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{12},
                          std::size_t{60}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW((void)core::DeploymentPlan::load(in, fp, "trunc"),
                 core::PlanError)
        << "prefix length " << len;
  }

  std::istringstream trailing(bytes + "\x7f", std::ios::binary);
  EXPECT_THROW((void)core::DeploymentPlan::load(trailing, fp, "trailing"),
               core::PlanError);

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x5A;
  std::istringstream bm(bad_magic, std::ios::binary);
  EXPECT_THROW((void)core::DeploymentPlan::load(bm, fp, "magic"),
               core::PlanError);
}

TEST(PlanIo, ByteFlipsNeverEscapeAsAnythingButPlanError) {
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  const std::string bytes = save_bytes(plan, fp);
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::istringstream in(mutated, std::ios::binary);
    try {
      // A flip may still parse (payload floats), read as stale (the
      // fingerprint bytes) or be rejected — but only ever as PlanError.
      (void)core::DeploymentPlan::load(in, fp, "flip");
    } catch (const core::PlanError&) {
    }
  }
}

TEST(PlanCache, WarmStartLoadsBitIdenticalPlanAndSkipsCompile) {
  const TempDir dir("plan_cache");
  const EnvGuard guard("RDO_PLAN_CACHE_DIR", dir.path().string());
  const Fixture f = make_fixture();

  const core::DeploymentPlan cold = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  EXPECT_EQ(cold.compile_stats.plan_cache_misses, 1);
  EXPECT_EQ(cold.compile_stats.plan_cache_hits, 0);
  EXPECT_EQ(cold.compile_stats.plan_cache_save_failures, 0);
  EXPECT_GT(cold.compile_stats.prepare_s, 0.0);
  EXPECT_GT(cold.compile_stats.vawo_solve_s, 0.0);

  const core::DeploymentPlan warm = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  // Warm-start proof: the expensive phases did not run at all...
  EXPECT_EQ(warm.compile_stats.plan_cache_hits, 1);
  EXPECT_EQ(warm.compile_stats.plan_cache_misses, 0);
  EXPECT_EQ(warm.compile_stats.lut_build_s, 0.0);
  EXPECT_EQ(warm.compile_stats.prepare_s, 0.0);
  EXPECT_EQ(warm.compile_stats.vawo_solve_s, 0.0);
  // ...and the loaded plan is bit-identical to the compiled one.
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());
  EXPECT_EQ(save_bytes(warm, fp), save_bytes(cold, fp));

  // Different options land in a different cache entry, not a stale hit.
  Fixture g = make_fixture(/*sigma=*/0.8);
  const core::DeploymentPlan other = core::compile_plan(*g.net, g.opt,
                                                        g.train());
  EXPECT_EQ(other.compile_stats.plan_cache_misses, 1);
  EXPECT_FALSE(has_tmp_files(dir.path()));
}

TEST(PlanCache, CorruptEntryIsRecompiledAndHealed) {
  const TempDir dir("plan_heal");
  const EnvGuard guard("RDO_PLAN_CACHE_DIR", dir.path().string());
  const Fixture f = make_fixture();
  const core::DeploymentPlan cold = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  const std::uint64_t fp = core::plan_fingerprint(*f.net, f.opt, f.train());

  // Find and damage the cache entry.
  fs::path entry;
  for (const auto& e : fs::directory_iterator(dir.path())) entry = e.path();
  ASSERT_FALSE(entry.empty());
  const std::string good = slurp(entry);
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size() / 2));
  }

  const core::DeploymentPlan again = core::compile_plan(*f.net, f.opt,
                                                        f.train());
  EXPECT_EQ(again.compile_stats.plan_cache_misses, 1);
  EXPECT_EQ(save_bytes(again, fp), save_bytes(cold, fp));
  // The rebuilt plan was re-saved over the damaged file.
  EXPECT_EQ(slurp(entry), good);
  const core::DeploymentPlan warm = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  EXPECT_EQ(warm.compile_stats.plan_cache_hits, 1);
}

TEST(PlanCache, SaveFailureIsCountedNotFatal) {
  const TempDir dir("plan_savefail");
  // A path component that is a regular file: open of the temp file fails.
  const fs::path blocker = dir.path() / "blocker";
  { std::ofstream f(blocker); }
  const EnvGuard guard("RDO_PLAN_CACHE_DIR", (blocker / "sub").string());
  const Fixture f = make_fixture();
  const core::DeploymentPlan plan = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  EXPECT_EQ(plan.compile_stats.plan_cache_misses, 1);
  EXPECT_EQ(plan.compile_stats.plan_cache_save_failures, 1);
  EXPECT_FALSE(plan.layers.empty());
}

TEST(LutCache, CountersTrackHitsAndMisses) {
  const TempDir dir("lut_cache");
  const EnvGuard guard("RDO_LUT_CACHE_DIR", dir.path().string());
  const Fixture f = make_fixture();
  const core::DeploymentPlan cold = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  EXPECT_EQ(cold.compile_stats.lut_cache_misses, 1);
  EXPECT_EQ(cold.compile_stats.lut_cache_hits, 0);
  const core::DeploymentPlan warm = core::compile_plan(*f.net, f.opt,
                                                       f.train());
  EXPECT_EQ(warm.compile_stats.lut_cache_hits, 1);
  EXPECT_EQ(warm.compile_stats.lut_cache_misses, 0);
  EXPECT_EQ(warm.compile_stats.lut_cache_save_failures, 0);
}

TEST(DeployStats, CacheCountersMergeAndSurfaceConditionally) {
  core::DeployStats a;
  a.lut_cache_hits = 1;
  a.plan_cache_misses = 2;
  core::DeployStats b;
  b.lut_cache_hits = 3;
  b.plan_cache_save_failures = 1;
  a.merge(b);
  EXPECT_EQ(a.lut_cache_hits, 4);
  EXPECT_EQ(a.plan_cache_misses, 2);
  EXPECT_EQ(a.plan_cache_save_failures, 1);

  // All-zero stats must emit NO cache counters (committed BENCH
  // baselines were produced without caches and must stay byte-stable).
  obs::Recorder quiet;
  core::add_deploy_cache_counters(quiet, core::DeployStats{});
  EXPECT_EQ(quiet.counters_json().size(), 0u);

  obs::Recorder loud;
  core::add_deploy_cache_counters(loud, a);
  EXPECT_EQ(loud.counter("lut_cache_hits"), 4);
  EXPECT_EQ(loud.counter("plan_cache_misses"), 2);
}

TEST(TmpSuffix, EncodesPidAndNeverRepeats) {
  const std::string a = core::unique_tmp_suffix();
  const std::string b = core::unique_tmp_suffix();
  EXPECT_NE(a, b);
  EXPECT_NE(a.find(".tmp." + std::to_string(::getpid()) + "."),
            std::string::npos);
}

TEST(RLutSave, ConcurrentSaversNeverYieldCorruptLoad) {
  const TempDir dir("rlut_race");
  const rram::CellModel cell{rram::CellKind::SLC, 200.0};
  const rram::WeightProgrammer prog(cell, 4, {0.5, 0.0});
  const rram::RLut lut = rram::RLut::build_analytic(prog);
  const std::uint64_t fp = rram::RLut::fingerprint(prog, 4, 4, 1);
  const std::string path = (dir.path() / "rlut.bin").string();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> savers;
  savers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    savers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        try {
          lut.save(path, fp);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread loader([&] {
    while (!stop.load()) {
      rram::RLut out;
      try {
        // Must observe either no file yet (false before the first rename
        // lands) or a complete, matching table — never a torn write.
        (void)rram::RLut::load(path, fp, out);
      } catch (const rram::LutError&) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& t : savers) t.join();
  stop.store(true);
  loader.join();

  EXPECT_EQ(failures.load(), 0);
  rram::RLut out;
  EXPECT_TRUE(rram::RLut::load(path, fp, out));
  EXPECT_EQ(out.max_weight(), lut.max_weight());
  EXPECT_FALSE(has_tmp_files(dir.path()));
}

#ifdef CACHE_WORKER_BIN
namespace {

std::string run_cmd(const std::string& cmd) {
  std::FILE* p = ::popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr) << cmd;
  std::string out;
  char buf[256];
  while (p != nullptr && std::fgets(buf, sizeof(buf), p) != nullptr) {
    out += buf;
  }
  if (p != nullptr) {
    EXPECT_EQ(::pclose(p), 0) << cmd << "\n" << out;
  }
  return out;
}

}  // namespace

// Satellite integration test: N worker *processes* share one
// RDO_LUT_CACHE_DIR + RDO_PLAN_CACHE_DIR, compile the identical config
// concurrently, and every one must report the identical plan digest with
// no stray temp files left behind. A warm rerun must hit the cache.
TEST(CacheMultiProcess, ConcurrentWorkersAgreeAndLeaveNoTempFiles) {
  const TempDir dir("mp_cache");
  const std::string env = "RDO_LUT_CACHE_DIR='" + dir.path().string() +
                          "' RDO_PLAN_CACHE_DIR='" + dir.path().string() +
                          "' ";
  const std::string worker = std::string(CACHE_WORKER_BIN);

  // Launch 3 concurrent cold workers through one shell.
  const std::string out = run_cmd(
      env + "'" + worker + "' & p1=$!; " +
      env + "'" + worker + "' & p2=$!; " +
      env + "'" + worker + "' & p3=$!; " +
      "wait $p1 && wait $p2 && wait $p3");
  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> digests;
  while (std::getline(lines, line)) {
    if (line.rfind("digest ", 0) == 0) digests.push_back(line);
  }
  ASSERT_EQ(digests.size(), 3u) << out;
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
  EXPECT_FALSE(has_tmp_files(dir.path()));

  // Warm rerun: same digest, and the worker reports a plan cache hit.
  const std::string warm = run_cmd(env + "'" + worker + "'");
  EXPECT_NE(warm.find(digests[0]), std::string::npos) << warm;
  EXPECT_NE(warm.find("plan_cache_hits 1"), std::string::npos) << warm;
  EXPECT_FALSE(has_tmp_files(dir.path()));
}
#endif  // CACHE_WORKER_BIN
