// Numerical-equivalence properties that justify the pipeline's fast path:
// absorbing the digital offsets into effective weights is exactly the
// hardware computation of Eq. (1)/(7), including the complement
// post-processing of §III-C.
#include <gtest/gtest.h>

#include <cmath>

#include "core/backend.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "rram/crossbar.h"

using namespace rdo;
using namespace rdo::core;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;
  nn::Dense* dense0 = nullptr;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 8;
    spec.classes = 4;
    spec.train_per_class = 20;
    spec.test_per_class = 8;
    spec.seed = 33;
    ds = data::make_synthetic(spec);
    nn::Rng rng(6);
    net.emplace<nn::Flatten>();
    dense0 = net.emplace<nn::Dense>(64, 16, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(16, 4, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 6; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(Equivalence, EffectiveWeightsImplementEq7WithComplement) {
  // y_eff (network weights after deployment) must equal the digital
  // computation: per group, sum x*V (analog), plus b * sum(x) (digital),
  // with the complement post-processing (2^n-1) * sum(x) - z' where used.
  auto& f = fixture();
  DeployOptions o;
  o.scheme = Scheme::VAWOStar;  // produces nonzero offsets + complements
  o.offsets.m = 8;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.6;
  o.seed = 4;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);

  const PlanLayer& pl = plan.layers[0];
  const EffectiveWeightBackend::LayerState& ls = backend.layers()[0];
  const std::int64_t rows = pl.lq.rows, cols = pl.lq.cols;
  const double maxw = 255.0;
  nn::Rng rng(9);
  std::vector<double> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  for (std::int64_t c = 0; c < cols; ++c) {
    // Path 1: effective weights as loaded into the backend's twin.
    double y_eff = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
      y_eff += x[static_cast<std::size_t>(r)] * ls.op->weight_at(r, c);
    }
    // Path 2: explicit hardware computation.
    double y_hw = 0.0;
    double sum_x_total = 0.0;
    for (std::int64_t g = 0; g < pl.assign.groups_per_col; ++g) {
      const std::size_t gi = static_cast<std::size_t>(g * cols + c);
      const std::int64_t r0 = g * o.offsets.m;
      const std::int64_t r1 = std::min(rows, r0 + o.offsets.m);
      double analog = 0.0, sum_x = 0.0;
      for (std::int64_t r = r0; r < r1; ++r) {
        analog += x[static_cast<std::size_t>(r)] *
                  ls.crw[static_cast<std::size_t>(r * cols + c)];
        sum_x += x[static_cast<std::size_t>(r)];
      }
      const double z = analog + ls.offsets[gi] * sum_x;  // Eq. (1)/(7)
      // Complement post-processing (ISAAC module, paper Sec. III-C).
      y_hw += pl.assign.complemented[gi] ? maxw * sum_x - z : z;
      sum_x_total += sum_x;
    }
    // The ISAAC weight shift: subtract zero * sum(x), then dequantize.
    const double y_hw_eff =
        pl.lq.scale * (y_hw - static_cast<double>(pl.lq.zero) * sum_x_total);
    EXPECT_NEAR(y_eff, y_hw_eff, 1e-3 * std::max(1.0, std::fabs(y_eff)))
        << "column " << c;
  }
}

TEST(Equivalence, PlainEffectiveWeightIsCrwPlusOffsetDequantized) {
  auto& f = fixture();
  DeployOptions o;
  o.scheme = Scheme::Plain;
  o.offsets.m = 8;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.4;
  o.seed = 5;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  const PlanLayer& pl = plan.layers[0];
  const EffectiveWeightBackend::LayerState& ls = backend.layers()[0];
  for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
    for (std::int64_t c = 0; c < pl.lq.cols; ++c) {
      const double v = ls.crw[static_cast<std::size_t>(r * pl.lq.cols + c)];
      EXPECT_NEAR(ls.op->weight_at(r, c),
                  pl.lq.dequant(static_cast<float>(v)), 1e-4f);
    }
  }
}

TEST(Equivalence, ZeroVariationPlainMatchesQuantizedRoundTrip) {
  auto& f = fixture();
  DeployOptions o;
  o.scheme = Scheme::Plain;
  o.cell = {rram::CellKind::MLC2, 200.0};
  o.variation.sigma = 0.0;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  const PlanLayer& pl = plan.layers[0];
  const EffectiveWeightBackend::LayerState& ls = backend.layers()[0];
  for (std::int64_t r = 0; r < pl.lq.rows; ++r) {
    for (std::int64_t c = 0; c < pl.lq.cols; ++c) {
      EXPECT_NEAR(ls.op->weight_at(r, c),
                  pl.lq.dequant(static_cast<float>(pl.lq.at(r, c))), 1e-5f);
    }
  }
}

TEST(Equivalence, ComplementIdentityOnDeviceLevelCrossbar) {
  // z = sum(w x) computed directly equals (2^n - 1) sum(x) - z' with z'
  // from the complemented weights — exactly, on ideal devices (the
  // identity the ISAAC post-processing module implements).
  rram::CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 32;  // 8 weights x 4 MLC2 cells
  cfg.cell = {rram::CellKind::MLC2, 200.0};
  cfg.active_wordlines = 8;
  rram::WeightProgrammer prog(cfg.cell, 8, {0.0, 0.0});

  nn::Rng rng(11);
  std::vector<int> w(8);
  for (auto& v : w) v = static_cast<int>(rng.uniform_int(0, 255));
  std::vector<double> x(8);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  auto dot_via_crossbar = [&](const std::vector<int>& weights) {
    std::vector<int> states(8 * 32, 0);
    for (int i = 0; i < 8; ++i) {
      const auto cells = prog.slice(weights[static_cast<std::size_t>(i)]);
      for (int k = 0; k < 4; ++k) {
        // weight i occupies columns 4i..4i+3, all rows -> row i only here
        states[static_cast<std::size_t>(i * 32 + i * 4 + k)] =
            cells[static_cast<std::size_t>(k)];
      }
    }
    rram::Crossbar xb(cfg);
    xb.program_ideal(states);
    const auto y = xb.vmm(x);
    double z = 0.0;
    for (int i = 0; i < 8; ++i) {
      double radix = 1.0;
      for (int k = 0; k < 4; ++k) {
        z += radix * y[static_cast<std::size_t>(i * 4 + k)];
        radix *= 4.0;
      }
    }
    return z;
  };

  std::vector<int> wbar(8);
  double sum_x = 0.0;
  for (int i = 0; i < 8; ++i) {
    wbar[static_cast<std::size_t>(i)] = 255 - w[static_cast<std::size_t>(i)];
    sum_x += x[static_cast<std::size_t>(i)];
  }
  const double direct = dot_via_crossbar(w);
  const double via_complement = 255.0 * sum_x - dot_via_crossbar(wbar);
  EXPECT_NEAR(direct, via_complement, 1e-9);
}

TEST(Equivalence, MaxPoolDeviceAndFloatPathsShareOneKernel) {
  // The float MaxPool2D layer and the device-level executor both call
  // nn::maxpool2d_image, so their pooling semantics cannot drift. Assert
  // parity of the shared kernel (double, as the device path uses it)
  // with the layer's float forward on the same data.
  nn::Rng rng(41);
  const std::int64_t c = 3, h = 8, w = 8, window = 2;
  nn::Tensor x({1, c, h, w});
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  nn::MaxPool2D layer(window);
  const nn::Tensor y_layer = layer.forward(x, /*train=*/false);

  std::vector<double> img(static_cast<std::size_t>(c * h * w));
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = x.data()[i];
  std::vector<double> y_dev(
      static_cast<std::size_t>(c * (h / window) * (w / window)));
  nn::maxpool2d_image(img.data(), c, h, w, window, y_dev.data());

  ASSERT_EQ(static_cast<std::int64_t>(y_dev.size()), y_layer.size());
  for (std::int64_t i = 0; i < y_layer.size(); ++i) {
    EXPECT_DOUBLE_EQ(y_dev[static_cast<std::size_t>(i)],
                     static_cast<double>(y_layer[i]));
  }
}

TEST(Equivalence, MaxPoolArgmaxBackwardUnchanged) {
  // The refactor onto the shared kernel must keep batch-global argmax
  // indices for backward: a gradient routed through a 2-sample batch
  // lands on each sample's own maximum.
  nn::Tensor x({2, 1, 2, 2});
  const float vals[] = {1.0f, 5.0f, 2.0f, 3.0f,   // sample 0: max at idx 1
                        9.0f, 0.0f, 4.0f, 7.0f};  // sample 1: max at idx 4
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = vals[i];
  nn::MaxPool2D layer(2);
  const nn::Tensor y = layer.forward(x, /*train=*/true);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
  nn::Tensor g({2, 1, 1, 1});
  g[0] = 1.0f;
  g[1] = 2.0f;
  const nn::Tensor gx = layer.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);  // sample 0's max
  EXPECT_FLOAT_EQ(gx[4], 2.0f);  // sample 1's max (batch-global index)
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[5], 0.0f);
}

TEST(Equivalence, OffsetLinearityEq1) {
  // Eq. (1): sum x_i (v_i + b) == sum x_i v_i + b sum x_i, for the
  // composed effective computation at double precision.
  nn::Rng rng(12);
  const int n = 16;
  std::vector<double> v(n), x(n);
  for (auto& e : v) e = rng.uniform(0.0, 255.0);
  for (auto& e : x) e = rng.uniform(0.0, 1.0);
  const double b = 37.0;
  double lhs = 0.0, dot = 0.0, sum_x = 0.0;
  for (int i = 0; i < n; ++i) {
    lhs += x[static_cast<std::size_t>(i)] * (v[static_cast<std::size_t>(i)] + b);
    dot += x[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    sum_x += x[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(lhs, dot + b * sum_x, 1e-9);
}
