// ISAAC tile cost model (Table II) and pipeline latency.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arch/isaac_cost.h"
#include "arch/energy.h"
#include "arch/pipeline.h"
#include "core/offset.h"
#include "core/opt/pipeline.h"
#include "core/plan.h"
#include "nn/dense.h"
#include "nn/sequential.h"

using namespace rdo::arch;

TEST(Arch, RegisterCountMatchesPaperEq9) {
  // Paper: "each crossbar needs 256 and 32 offset registers for m = 16
  // and 128" (128x128, 2-bit MLC, 8-bit weights -> l = 32).
  TileParams tp;
  EXPECT_EQ(offset_hardware(16, 8, tp).register_bits, 256 * 8);
  EXPECT_EQ(offset_hardware(128, 8, tp).register_bits, 32 * 8);
  EXPECT_EQ(rdo::core::register_count(128, 32, 16), 256);
  EXPECT_EQ(rdo::core::register_count(128, 32, 128), 32);
}

TEST(Arch, AdderCostGrowsWithM) {
  TileParams tp;
  GateCosts g;
  const OffsetHardware h16 = offset_hardware(16, 8, tp);
  const OffsetHardware h128 = offset_hardware(128, 8, tp);
  EXPECT_GT(h128.adder_fa, h16.adder_fa);
  EXPECT_EQ(h16.multiplier_fa, h128.multiplier_fa);  // shared multiplier
}

TEST(Arch, RegisterCostShrinksWithM) {
  TileParams tp;
  const OffsetHardware h16 = offset_hardware(16, 8, tp);
  const OffsetHardware h128 = offset_hardware(128, 8, tp);
  EXPECT_GT(h16.register_bits, h128.register_bits);
}

TEST(Arch, RejectsBadParameters) {
  TileParams tp;
  EXPECT_THROW(offset_hardware(0, 8, tp), std::invalid_argument);
  EXPECT_THROW(offset_hardware(16, 0, tp), std::invalid_argument);
}

TEST(Arch, SumMultiFitsInIsaacClock) {
  // Paper §IV-B2: the Sum+Multi stage must not exceed the 100 ns cycle.
  GateCosts g;
  TileParams tp;
  for (int m : {16, 64, 128}) {
    EXPECT_LT(sum_multi_delay_ns(m, g), tp.clock_ns) << "m=" << m;
  }
}

TEST(Arch, DelayGrowsSlowlyWithM) {
  GateCosts g;
  const double d16 = sum_multi_delay_ns(16, g);
  const double d128 = sum_multi_delay_ns(128, g);
  EXPECT_GT(d128, d16);
  EXPECT_LT(d128 - d16, 2.0);  // only log2(128/16) = 3 extra FA stages
}

TEST(Arch, TableIIShapeAreaOverhead) {
  // Area overhead: low double-digit percent, larger at m = 128.
  const TileOverhead o16 = tile_overhead(16, 8, 0.5761);   // ResNet ratios
  const TileOverhead o128 = tile_overhead(128, 8, 0.7224); // from Table I
  EXPECT_GT(o16.area_pct, 5.0);
  EXPECT_LT(o16.area_pct, 25.0);
  EXPECT_GT(o128.area_pct, o16.area_pct);
}

TEST(Arch, TableIIShapePowerOverhead) {
  // Power overhead: single-digit percent, larger at m = 128 (adders
  // outpace the register savings + smaller read-power saving).
  const TileOverhead o16 = tile_overhead(16, 8, 0.5761);
  const TileOverhead o128 = tile_overhead(128, 8, 0.7224);
  EXPECT_GT(o16.power_pct, 0.0);
  EXPECT_LT(o16.power_pct, 5.0);
  EXPECT_GT(o128.power_pct, o16.power_pct);
  EXPECT_LT(o128.power_pct, 10.0);
}

TEST(Arch, ReadPowerSavingReducesNetOverhead) {
  const TileOverhead with_saving = tile_overhead(16, 8, 0.6);
  const TileOverhead no_saving = tile_overhead(16, 8, 1.0);
  EXPECT_LT(with_saving.power_mw, no_saving.power_mw);
  EXPECT_NEAR(no_saving.power_mw - with_saving.power_mw,
              0.4 * TileParams{}.device_read_power_mw, 1e-9);
}

TEST(Arch, AreaIndependentOfReadPowerRatio) {
  EXPECT_DOUBLE_EQ(tile_overhead(16, 8, 0.5).area_mm2,
                   tile_overhead(16, 8, 1.0).area_mm2);
}

TEST(Arch, OffsetHardwareCostAccounting) {
  GateCosts g;
  OffsetHardware hw;
  hw.adder_fa = 10;
  hw.multiplier_fa = 0;
  hw.multiplier_and = 0;
  hw.register_bits = 100;
  EXPECT_DOUBLE_EQ(hw.area_um2(g), 10 * g.fa_area_um2 +
                                       100 * g.sram_bit_area_um2);
  EXPECT_DOUBLE_EQ(hw.power_uw(g), 10 * g.fa_power_uw +
                                       100 * g.sram_bit_power_uw);
}

TEST(Arch, LayerOffsetRegistersMatchesEq9) {
  // Eq. 9 specialized to a layer matrix: ceil(rows/m) groups per column.
  EXPECT_EQ(layer_offset_registers(128, 32, 16), 256);
  EXPECT_EQ(layer_offset_registers(128, 32, 128), 32);
  EXPECT_EQ(layer_offset_registers(130, 1, 16), 9);  // ragged last group
  EXPECT_EQ(layer_offset_registers(6, 4, 8), 4);     // m larger than rows
  EXPECT_THROW(layer_offset_registers(0, 4, 2), std::invalid_argument);
  EXPECT_THROW(layer_offset_registers(6, 4, 0), std::invalid_argument);
}

TEST(Arch, PlanAccountingAgreesWithCostModel) {
  // The cost model and core::DeploymentPlan::total_offset_registers()
  // must never drift apart: before any optimizer pass the plan's count
  // is exactly the per-layer Eq. 9 sum, and after the passes it is
  // exactly what plan_overhead() prices.
  namespace core = rdo::core;
  namespace nn = rdo::nn;
  nn::Rng rng(11);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Dense>(6, 4, rng);
  nn::Tensor images({12, 6});
  for (std::int64_t i = 0; i < images.size(); ++i) {
    images[i] = 0.2f * static_cast<float>(i % 7) - 0.6f;
  }
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) labels.push_back(i % 4);
  const nn::DataView train{&images, &labels};
  core::DeployOptions opt;
  opt.scheme = core::Scheme::VAWOStar;
  opt.weight_bits = 4;
  opt.offsets.m = 2;
  opt.offsets.offset_bits = 4;
  opt.lut_k_sets = 2;
  opt.lut_j_cycles = 2;
  opt.grad_samples = 12;
  opt.seed = 11;

  core::DeploymentPlan plan = core::compile_plan(*net, opt, train);
  long long eq9 = 0;
  for (const core::PlanLayer& pl : plan.layers) {
    eq9 += layer_offset_registers(pl.lq.rows, pl.lq.cols, pl.m);
  }
  EXPECT_EQ(eq9, plan.total_offset_registers());

  core::opt::run_pipeline(
      plan, {"tune_group_size", "color_offset_registers"});
  std::vector<LayerOffsetCost> lc;
  for (std::size_t li = 0; li < plan.layers.size(); ++li) {
    const core::PlanLayer& pl = plan.layers[li];
    lc.push_back({pl.m,
                  static_cast<long long>(
                      plan.layer_tiling(li).total_crossbars()),
                  static_cast<long long>(pl.offset_registers)});
  }
  const PlanOverhead pov = plan_overhead(lc, opt.offsets.offset_bits, 1.0);
  EXPECT_EQ(pov.registers, plan.total_offset_registers());
  EXPECT_LT(pov.registers, eq9);  // the passes actually shared registers
  EXPECT_EQ(pov.register_bits, pov.registers * opt.offsets.offset_bits);
  EXPECT_GT(pov.tiles_used, 0);
}

TEST(Arch, PlanOverheadPricesKeptRegistersOnly) {
  // Two identical plans except for shared registers: fewer registers
  // must mean strictly less area and digital power, same tile count.
  const std::vector<LayerOffsetCost> full = {{16, 4, 256}};
  const std::vector<LayerOffsetCost> shared = {{16, 4, 32}};
  const PlanOverhead a = plan_overhead(full, 8, 1.0);
  const PlanOverhead b = plan_overhead(shared, 8, 1.0);
  EXPECT_LT(b.area_mm2, a.area_mm2);
  EXPECT_LT(b.power_mw, a.power_mw);
  EXPECT_EQ(a.tiles_used, b.tiles_used);
  EXPECT_THROW(plan_overhead(full, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(plan_overhead({{0, 4, 1}}, 8, 1.0), std::invalid_argument);
}

TEST(Pipeline, ReadCyclesFollowGeometry) {
  using namespace rdo::arch;
  PipelineParams pp;  // 128 rows, 16 active, 16-bit inputs
  const LayerLatency l = layer_latency(128, 16, pp);
  EXPECT_EQ(l.read_cycles, 8 * 16);
  EXPECT_TRUE(l.sum_multi_hidden);
}

TEST(Pipeline, SmallLayerIsFaster) {
  using namespace rdo::arch;
  const LayerLatency small = layer_latency(16, 16);
  const LayerLatency big = layer_latency(128, 16);
  EXPECT_LT(small.read_cycles, big.read_cycles);
  EXPECT_GT(small.vmm_per_second, big.vmm_per_second);
}

TEST(Pipeline, RowTilesDoNotIncreaseLatency) {
  using namespace rdo::arch;
  // Row tiles execute in parallel crossbars.
  EXPECT_EQ(layer_latency(128, 16).read_cycles,
            layer_latency(512, 16).read_cycles);
}

TEST(Pipeline, SumMultiHiddenAtPaperClock) {
  using namespace rdo::arch;
  for (int m : {16, 64, 128}) {
    EXPECT_TRUE(layer_latency(128, m).sum_multi_hidden) << m;
  }
}

TEST(Pipeline, SlowClockExposesSumMulti) {
  using namespace rdo::arch;
  PipelineParams pp;
  pp.clock_ns = 5.0;  // faster than the Sum+Multi critical path
  const LayerLatency l = layer_latency(128, 128, pp);
  EXPECT_FALSE(l.sum_multi_hidden);
  EXPECT_GT(l.latency_ns,
            static_cast<double>(l.read_cycles) * pp.clock_ns);
}

TEST(Energy, ComponentsArePositiveAndSum) {
  using namespace rdo::arch;
  VmmGeometry g;
  const VmmEnergy e = vmm_energy(g, 128.0 * 128.0 * 1.5);
  EXPECT_GT(e.adc_pj, 0.0);
  EXPECT_GT(e.dac_pj, 0.0);
  EXPECT_GT(e.device_pj, 0.0);
  EXPECT_GT(e.digital_pj, 0.0);
  EXPECT_GT(e.offset_pj, 0.0);
  EXPECT_NEAR(e.total_pj(), e.adc_pj + e.dac_pj + e.device_pj +
                                e.digital_pj + e.offset_pj,
              1e-9);
}

TEST(Energy, AdcDominates) {
  // The ISAAC energy budget: ADC conversions dominate per-VMM energy.
  using namespace rdo::arch;
  const VmmEnergy e = vmm_energy({}, 128.0 * 128.0 * 1.5);
  EXPECT_GT(e.adc_pj, e.dac_pj);
  EXPECT_GT(e.adc_pj, e.device_pj);
  EXPECT_GT(e.adc_pj, e.offset_pj);
}

TEST(Energy, DeviceTermScalesWithConductance) {
  // The Table I effect in Joules: lower total conductance (VAWO*'s lower
  // CTWs) means lower device read energy.
  using namespace rdo::arch;
  VmmGeometry g;
  const VmmEnergy plain = vmm_energy(g, 20000.0);
  const VmmEnergy vawo = vmm_energy(g, 0.45 * 20000.0);
  EXPECT_NEAR(vawo.device_pj / plain.device_pj, 0.45, 1e-9);
  EXPECT_EQ(vawo.adc_pj, plain.adc_pj);  // fixed costs unchanged
}

TEST(Energy, OffsetTermGrowsWithFinerM) {
  using namespace rdo::arch;
  VmmGeometry g16;
  g16.m = 16;
  VmmGeometry g128;
  g128.m = 128;
  EXPECT_GT(vmm_energy(g16, 1000.0).offset_pj,
            vmm_energy(g128, 1000.0).offset_pj);
}

TEST(Energy, OffsetsCanBeDisabled) {
  using namespace rdo::arch;
  VmmGeometry g;
  g.offsets_enabled = false;
  EXPECT_EQ(vmm_energy(g, 1000.0).offset_pj, 0.0);
}

TEST(Energy, NetworkEnergyScalesLinearly) {
  using namespace rdo::arch;
  VmmGeometry g;
  const double one = network_energy_pj(1, 1, g, 1000.0);
  EXPECT_NEAR(network_energy_pj(10, 7, g, 1000.0), 70.0 * one, 1e-6 * one);
}

TEST(Energy, RejectsBadGeometry) {
  using namespace rdo::arch;
  VmmGeometry g;
  g.rows = 0;
  EXPECT_THROW(vmm_energy(g, 1.0), std::invalid_argument);
}

TEST(Arch, OffsetGroupGeometryHelpers) {
  using namespace rdo::core;
  EXPECT_EQ(groups_per_column(128, 16), 8);
  EXPECT_EQ(groups_per_column(130, 16), 9);
  EXPECT_EQ(group_of_row(0, 16), 0);
  EXPECT_EQ(group_of_row(15, 16), 0);
  EXPECT_EQ(group_of_row(16, 16), 1);
  EXPECT_THROW(groups_per_column(10, 0), std::invalid_argument);
  OffsetConfig oc;
  oc.offset_bits = 8;
  EXPECT_EQ(oc.offset_min(), -128);
  EXPECT_EQ(oc.offset_max(), 127);
  oc.offset_bits = 4;
  EXPECT_EQ(oc.offset_min(), -8);
  EXPECT_EQ(oc.offset_max(), 7);
}
