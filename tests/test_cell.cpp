// SLC / MLC2 cell models and the finite ON/OFF ratio.
#include <gtest/gtest.h>

#include "rram/cell.h"

using namespace rdo::rram;

TEST(CellModel, SlcBitsAndStates) {
  CellModel c{CellKind::SLC, 200.0};
  EXPECT_EQ(c.bits(), 1);
  EXPECT_EQ(c.states(), 2);
  EXPECT_EQ(c.radix(), 2);
}

TEST(CellModel, Mlc2BitsAndStates) {
  CellModel c{CellKind::MLC2, 200.0};
  EXPECT_EQ(c.bits(), 2);
  EXPECT_EQ(c.states(), 4);
  EXPECT_EQ(c.radix(), 4);
}

TEST(CellModel, IdealReadIsExactState) {
  for (CellKind kind : {CellKind::SLC, CellKind::MLC2}) {
    CellModel c{kind, 200.0};
    for (int s = 0; s < c.states(); ++s) {
      EXPECT_DOUBLE_EQ(c.read_value(s, 1.0), static_cast<double>(s));
    }
  }
}

TEST(CellModel, HrsOffsetReflectsOnOffRatio) {
  CellModel slc{CellKind::SLC, 200.0};
  // (top + c)/c = ratio  =>  c = top/(ratio-1).
  EXPECT_NEAR(slc.hrs_offset(), 1.0 / 199.0, 1e-12);
  CellModel mlc{CellKind::MLC2, 200.0};
  EXPECT_NEAR(mlc.hrs_offset(), 3.0 / 199.0, 1e-12);
}

TEST(CellModel, InfiniteRatioLimitGivesZeroLeakage) {
  CellModel c{CellKind::SLC, 1e12};
  EXPECT_NEAR(c.hrs_offset(), 0.0, 1e-10);
  // HRS read with variation stays ~0 when leakage vanishes.
  EXPECT_NEAR(c.read_value(0, 2.0), 0.0, 1e-10);
}

TEST(CellModel, HrsLeakageVisibleUnderVariation) {
  CellModel c{CellKind::SLC, 200.0};
  // state 0 with factor 2: (0 + c)*2 - c = c > 0.
  EXPECT_NEAR(c.read_value(0, 2.0), c.hrs_offset(), 1e-12);
  // factor below 1 gives a small negative excursion (under-conduction).
  EXPECT_LT(c.read_value(0, 0.5), 0.0);
}

TEST(CellModel, VariationScalesAroundState) {
  CellModel c{CellKind::MLC2, 200.0};
  const double hi = c.read_value(3, 1.2);
  const double lo = c.read_value(3, 0.8);
  EXPECT_GT(hi, 3.0);
  EXPECT_LT(lo, 3.0);
  // Symmetric factors around 1 are symmetric around the state.
  EXPECT_NEAR(hi - 3.0, 3.0 - lo, 1e-9);
}

TEST(CellModel, ReadValueRejectsBadState) {
  CellModel c{CellKind::SLC, 200.0};
  EXPECT_THROW(c.read_value(2, 1.0), std::invalid_argument);
  EXPECT_THROW(c.read_value(-1, 1.0), std::invalid_argument);
}

TEST(CellModel, ReadPowerProportionalToConductance) {
  CellModel c{CellKind::MLC2, 200.0};
  // Power strictly increases with state; HRS has small nonzero power.
  double prev = -1.0;
  for (int s = 0; s < c.states(); ++s) {
    const double p = c.read_power(s);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_GT(c.read_power(0), 0.0);
  EXPECT_NEAR(c.read_power(3) / c.read_power(0), 200.0, 1e-9);
}

TEST(CellModel, ToString) {
  EXPECT_STREQ(to_string(CellKind::SLC), "SLC");
  EXPECT_STREQ(to_string(CellKind::MLC2), "MLC2");
}
