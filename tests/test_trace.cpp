// Execution tracing (obs/trace.h): off-by-default cost model, the
// structural validator, and the end-to-end guarantee — a traced
// deployment produces a Perfetto-loadable document with at least one
// span per deploy phase, per-layer spans, and one named track per pool
// worker.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "core/vawo.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/parallel.h"
#include "nn/sequential.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/crossbar_executor.h"

using namespace rdo;
using rdo::obs::Json;

namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { nn::set_thread_count(n); }
  ~ThreadGuard() { nn::set_thread_count(0); }
};

std::string temp_trace_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("rdo_test_trace_") + tag + ".json"))
      .string();
}

/// Count events per name, separating spans from counters and metadata.
std::map<std::string, int> span_counts(const Json& doc) {
  std::map<std::string, int> counts;
  const Json* evs = doc.find("traceEvents");
  for (std::size_t i = 0; i < evs->size(); ++i) {
    const Json& e = evs->at(i);
    if (e.find("ph")->as_string() == "X") {
      ++counts[e.find("name")->as_string()];
    }
  }
  return counts;
}

}  // namespace

TEST(Trace, SpansAreFreeWhenTracingIsOff) {
  // RDO_TRACE is unset under ctest, so recording never starts; a span
  // must stay inactive and stop must report nothing to write.
  ASSERT_EQ(rdo::obs::trace_stop(), "");
  rdo::obs::TraceSpan span("unit:test");
  EXPECT_FALSE(span.active());
  span.arg("ignored", 1);  // must be a no-op, not a crash
  rdo::obs::trace_counter("unit_counter", 42);
  EXPECT_EQ(rdo::obs::trace_stop(), "");
}

TEST(Trace, ValidatorCatchesStructuralViolations) {
  std::string err;
  EXPECT_FALSE(rdo::obs::validate_trace_document(Json::parse("[]"), &err));
  EXPECT_FALSE(
      rdo::obs::validate_trace_document(Json::parse("{}"), &err));
  // An X event without dur must be rejected.
  Json doc = Json::parse(
      R"({"traceEvents":[{"name":"a","ph":"X","ts":1.0,"pid":1,"tid":0}]})");
  EXPECT_FALSE(rdo::obs::validate_trace_document(doc, &err));
  // Same event with a dur passes.
  Json ok = Json::parse(
      R"({"traceEvents":[{"name":"a","ph":"X","ts":1.0,"dur":2.0,)"
      R"("pid":1,"tid":0}]})");
  EXPECT_TRUE(rdo::obs::validate_trace_document(ok, &err)) << err;
  // Counter events need args.
  Json counter = Json::parse(
      R"({"traceEvents":[{"name":"c","ph":"C","ts":1.0,"pid":1,"tid":0}]})");
  EXPECT_FALSE(rdo::obs::validate_trace_document(counter, &err));
}

TEST(Trace, StartStopWritesAndSecondStopIsIdempotent) {
  const std::string path = temp_trace_path("startstop");
  rdo::obs::trace_start(path);
  {
    rdo::obs::TraceSpan span("unit:scope");
    EXPECT_TRUE(span.active());
    span.arg("k", 7);
  }
  EXPECT_EQ(rdo::obs::trace_stop(), path);
  EXPECT_EQ(rdo::obs::trace_stop(), "");  // already stopped
  const Json doc = rdo::obs::read_json_file(path);
  std::string err;
  EXPECT_TRUE(rdo::obs::validate_trace_document(doc, &err)) << err;
  EXPECT_EQ(span_counts(doc)["unit:scope"], 1);
  std::filesystem::remove(path);
}

TEST(Trace, DeploymentTraceCoversEveryPhaseAndWorkerTrack) {
  ThreadGuard guard(4);
  // Spawn the helper workers before recording: worker tracks must stay
  // registered across trace_start (bindings outlive individual traces).
  nn::parallel_for(1024, [](std::int64_t, std::int64_t) {}, /*grain=*/1);

  data::SyntheticSpec spec = data::mnist_like();
  spec.height = spec.width = 8;
  spec.classes = 4;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  spec.seed = 5;
  const data::SyntheticDataset ds = data::make_synthetic(spec);
  nn::Rng rng(9);
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(64, 16, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(16, 4, rng);

  core::DeployOptions o;
  o.scheme = core::Scheme::VAWOStarPWT;  // covers VAWO, program, PWT, eval
  o.offsets.m = 8;
  o.cell = {rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.4;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 2;
  o.grad_samples = 32;
  o.pwt.epochs = 1;
  o.pwt.max_samples = 32;
  o.seed = 3;

  const std::string path = temp_trace_path("deploy");
  rdo::obs::trace_start(path);
  (void)core::run_scheme(net, o, ds.train(), ds.test(), /*repeats=*/2);
  // A dispatched loop inside the recording window guarantees pool spans
  // and counter samples even if the tiny deployment above ran its loops
  // inline.
  nn::parallel_for(1024, [](std::int64_t, std::int64_t) {}, /*grain=*/1);
  {
    // Device-level layer: per-layer / per-tile sim spans.
    quant::LayerQuant lq;
    lq.bits = 8;
    lq.rows = 16;
    lq.cols = 8;
    lq.scale = 0.01f;
    lq.zero = 128;
    lq.q.assign(static_cast<std::size_t>(lq.rows * lq.cols), 100);
    const core::VawoResult assign = core::plain_layer(lq, 8);
    sim::ExecutorConfig cfg;
    cfg.xbar.rows = 16;
    cfg.xbar.cols = 32;
    cfg.xbar.cell = {rram::CellKind::SLC, 200.0};
    cfg.xbar.variation.sigma = 0.2;
    cfg.xbar.active_wordlines = 4;
    cfg.offsets.m = 8;
    nn::Rng xrng(17);
    const sim::CrossbarLayerExecutor exec(lq, assign, cfg, xrng);
    (void)exec.measure_crw();
  }
  ASSERT_EQ(rdo::obs::trace_stop(), path);

  const Json doc = rdo::obs::read_json_file(path);
  std::string err;
  ASSERT_TRUE(rdo::obs::validate_trace_document(doc, &err)) << err;

  // >= 1 span per deploy phase; per-layer spans from both the deploy
  // pipeline (two Dense layers x two cycles) and the device level.
  const std::map<std::string, int> spans = span_counts(doc);
  for (const char* phase :
       {"deploy:lut_build", "deploy:prepare", "deploy:vawo_solve",
        "deploy:program", "deploy:tune", "deploy:evaluate", "pwt:epoch",
        "pwt:batch", "pool:parallel_for", "pool:chunk"}) {
    EXPECT_GE(spans.count(phase) ? spans.at(phase) : 0, 1) << phase;
  }
  EXPECT_GE(spans.at("vawo:layer"), 2);
  EXPECT_GE(spans.at("program:layer"), 4);  // 2 layers x 2 cycles
  EXPECT_GE(spans.at("sim:build_layer"), 1);
  EXPECT_GE(spans.at("sim:program_tile"), 1);
  EXPECT_GE(spans.at("sim:measure_crw"), 1);

  // Counter tracks and thread metadata: one named track per pool worker
  // (4 threads -> 3 helpers), plus the main thread; tids unique.
  std::map<std::string, std::string> tracks;  // name -> tid dump
  std::map<std::string, int> counters;
  const Json* evs = doc.find("traceEvents");
  for (std::size_t i = 0; i < evs->size(); ++i) {
    const Json& e = evs->at(i);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M" && e.find("name")->as_string() == "thread_name") {
      const std::string name = e.find("args")->find("name")->as_string();
      EXPECT_EQ(tracks.count(name), 0u) << "duplicate track " << name;
      tracks[name] = e.find("tid")->dump();
    } else if (ph == "C") {
      ++counters[e.find("name")->as_string()];
    }
  }
  EXPECT_EQ(tracks.count("main"), 1u);
  for (const char* worker :
       {"pool-worker-1", "pool-worker-2", "pool-worker-3"}) {
    EXPECT_EQ(tracks.count(worker), 1u) << worker;
  }
  EXPECT_GE(counters["device_pulses"], 2);  // one per program_cycle
  EXPECT_GE(counters["pool_chunks_executed"], 1);
  EXPECT_GE(counters["pool_chunks_stolen"], 1);
  std::filesystem::remove(path);
}
