// Matrix -> crossbar tiling and cell-state expansion.
#include <gtest/gtest.h>

#include "nn/dense.h"
#include "quant/quantizer.h"
#include "rram/tiler.h"

using namespace rdo::rram;
using rdo::nn::Dense;
using rdo::nn::Rng;

TEST(Tiler, ExactFit) {
  // 128 rows x 32 weight cols, 4 cells/weight on 128x128 -> 1 crossbar.
  const TilingInfo t = compute_tiling(128, 32, 128, 128, 4);
  EXPECT_EQ(t.row_tiles, 1);
  EXPECT_EQ(t.col_tiles, 1);
  EXPECT_EQ(t.total_crossbars(), 1);
}

TEST(Tiler, RowOverflowAddsTile) {
  const TilingInfo t = compute_tiling(129, 32, 128, 128, 4);
  EXPECT_EQ(t.row_tiles, 2);
  EXPECT_EQ(t.total_crossbars(), 2);
}

TEST(Tiler, ColOverflowAddsTile) {
  const TilingInfo t = compute_tiling(128, 33, 128, 128, 4);
  EXPECT_EQ(t.col_tiles, 2);
}

TEST(Tiler, MoreCellsPerWeightNeedsMoreCrossbars) {
  // The Table III accounting: crossbar count scales with devices/weight.
  const TilingInfo ours = compute_tiling(512, 512, 128, 128, 4);   // MLC2 x4
  const TilingInfo slc8 = compute_tiling(512, 512, 128, 128, 8);   // SLC x8
  const TilingInfo pm10 = compute_tiling(512, 512, 128, 128, 10);  // PM x10
  EXPECT_EQ(slc8.total_crossbars(), 2 * ours.total_crossbars());
  EXPECT_GT(pm10.total_crossbars(), slc8.total_crossbars());
}

TEST(Tiler, RejectsBadGeometry) {
  EXPECT_THROW(compute_tiling(10, 10, 128, 128, 0), std::invalid_argument);
  EXPECT_THROW(compute_tiling(10, 10, 128, 2, 4), std::invalid_argument);
}

TEST(Tiler, TileStatesLayout) {
  // 2x3 matrix of known weights, MLC2 (4 cells each), tiny 4x16 crossbar.
  Rng rng(1);
  Dense d(2, 3, rng);
  d.set_weight_at(0, 0, 0.0f);
  rdo::quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = 2;
  lq.cols = 3;
  lq.q = {0x1B, 0x00, 0xFF, 0x40, 0x05, 0x80};
  WeightProgrammer prog({CellKind::MLC2, 200.0}, 8, {0.0, 0.0});
  CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 16;
  const auto states = tile_states(lq, prog, cfg, 0, 0);
  ASSERT_EQ(states.size(), 64u);
  // Weight (0,0) = 0x1B = 00 01 10 11 -> cells LSB-first 3,2,1,0.
  EXPECT_EQ(states[0], 3);
  EXPECT_EQ(states[1], 2);
  EXPECT_EQ(states[2], 1);
  EXPECT_EQ(states[3], 0);
  // Weight (0,2) = 0xFF -> all cells 3, at columns 8..11.
  EXPECT_EQ(states[8], 3);
  EXPECT_EQ(states[11], 3);
  // Weight (1,1) = 0x05 -> cells 1,1,0,0 at row 1, columns 4..7.
  EXPECT_EQ(states[16 + 4], 1);
  EXPECT_EQ(states[16 + 5], 1);
  EXPECT_EQ(states[16 + 6], 0);
  // Rows beyond the matrix stay in HRS.
  EXPECT_EQ(states[2 * 16 + 0], 0);
  EXPECT_EQ(states[3 * 16 + 15], 0);
}

TEST(Tiler, TileStatesSecondRowTile) {
  rdo::quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = 5;
  lq.cols = 1;
  lq.q = {1, 2, 3, 4, 0xF0};
  WeightProgrammer prog({CellKind::MLC2, 200.0}, 8, {0.0, 0.0});
  CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  const auto states = tile_states(lq, prog, cfg, 1, 0);
  // Only matrix row 4 (= 0xF0 -> cells 0,0,3,3) lands in this tile.
  EXPECT_EQ(states[0], 0);
  EXPECT_EQ(states[2], 3);
  EXPECT_EQ(states[3], 3);
  EXPECT_EQ(states[4], 0);  // rest empty
}
