// VAWO group solver and layer-level assignment (paper §III-B, §III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "core/vawo.h"

using namespace rdo::core;
using namespace rdo::rram;
using rdo::nn::Rng;

namespace {

const CellModel kSlc{CellKind::SLC, 200.0};

RLut lut_for(double sigma, CellKind kind = CellKind::SLC) {
  WeightProgrammer p({kind, 200.0}, 8, {sigma, 0.0});
  return RLut::build_analytic(p);
}

rdo::quant::LayerQuant make_lq(std::int64_t rows, std::int64_t cols,
                               const std::vector<int>& q) {
  rdo::quant::LayerQuant lq;
  lq.bits = 8;
  lq.rows = rows;
  lq.cols = cols;
  lq.scale = 0.01f;
  lq.zero = 128;
  lq.q = q;
  return lq;
}

}  // namespace

TEST(Vawo, ZeroVarianceRecoversNtwExactly) {
  // sigma = 0: E[R(v)] = v, Var = 0 -> any offset works; the solution must
  // satisfy v + b = ntw exactly.
  const RLut lut = lut_for(0.0);
  VawoOptions opt;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{50, 60, 70, 80};
  const std::vector<double> grad{1.0, 1.0, 1.0, 1.0};
  const double obj = vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
  EXPECT_NEAR(obj, 0.0, 1e-9);
  for (std::size_t i = 0; i < ntw.size(); ++i) {
    EXPECT_EQ(ctw[i] + b, ntw[i]);
  }
}

TEST(Vawo, IdenticalWeightsAreAbsorbedByTheOffset) {
  // A group of identical weights can be represented exactly by the offset
  // alone (v = 0, zero device variance): E[NRW] lands on the NTW.
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{100, 100, 100, 100};
  const std::vector<double> grad{1.0, 1.0, 1.0, 1.0};
  vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
  for (std::size_t i = 0; i < ntw.size(); ++i) {
    EXPECT_NEAR(lut.mean(ctw[i]) + b, static_cast<double>(ntw[i]), 1.5);
  }
}

TEST(Vawo, ReportedObjectiveMatchesRecomputation) {
  // Internal consistency: the returned objective equals the objective
  // recomputed from the returned (ctw, b, complemented) solution.
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  opt.use_complement = true;
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> ntw;
    std::vector<double> grad;
    for (int i = 0; i < 8; ++i) {
      ntw.push_back(static_cast<int>(rng.uniform_int(0, 255)));
      grad.push_back(rng.uniform(0.01, 1.0));
    }
    int b = 0;
    bool comp = false;
    std::vector<int> ctw;
    const double obj =
        vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
    double recomputed = 0.0;
    for (std::size_t i = 0; i < ntw.size(); ++i) {
      const int target = comp ? 255 - ntw[i] : ntw[i];
      const double bias = lut.mean(ctw[i]) + b - target;
      recomputed += grad[i] * grad[i] * (lut.var(ctw[i]) + bias * bias);
    }
    EXPECT_NEAR(obj, recomputed, 1e-9 * std::max(1.0, recomputed));
  }
}

TEST(Vawo, PrefersLowerCtwThanNtw) {
  // E[R(v)] > v (lognormal inflation), so the unbiased CTW is below the
  // NTW and the offset positive — the mechanism behind Table I's reading
  // power saving.
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{180, 190, 200, 210};
  const std::vector<double> grad{1.0, 1.0, 1.0, 1.0};
  vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
  if (!comp) {
    for (std::size_t i = 0; i < ntw.size(); ++i) EXPECT_LT(ctw[i], ntw[i]);
  }
}

TEST(Vawo, ObjectiveNeverWorseThanPlainAssignment) {
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> ntw;
    std::vector<double> grad;
    for (int i = 0; i < 8; ++i) {
      ntw.push_back(static_cast<int>(rng.uniform_int(0, 255)));
      grad.push_back(rng.uniform(0.01, 1.0));
    }
    int b = 0;
    bool comp = false;
    std::vector<int> ctw;
    const double obj =
        vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
    // Plain: v = ntw, b = 0; objective includes the (large) bias term from
    // the lognormal mean inflation.
    double plain = 0.0;
    for (std::size_t i = 0; i < ntw.size(); ++i) {
      const double bias = lut.mean(ntw[i]) - ntw[i];
      plain += grad[i] * grad[i] * (lut.var(ntw[i]) + bias * bias);
    }
    EXPECT_LE(obj, plain + 1e-9);
  }
}

TEST(Vawo, ComplementChosenForHighWeights) {
  // A group of near-maximal weights: stored directly they need high-
  // conductance (high-variance) devices; complemented they become small
  // values on low-variance devices. VAWO* must pick the complement.
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  opt.use_complement = true;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{250, 252, 248, 255};
  const std::vector<double> grad{1.0, 1.0, 1.0, 1.0};
  vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
  EXPECT_TRUE(comp);
}

TEST(Vawo, ComplementObjectiveNeverWorseThanWithout) {
  const RLut lut = lut_for(0.7);
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> ntw;
    std::vector<double> grad;
    for (int i = 0; i < 6; ++i) {
      ntw.push_back(static_cast<int>(rng.uniform_int(0, 255)));
      grad.push_back(rng.uniform(0.01, 1.0));
    }
    VawoOptions plain_opt;
    VawoOptions star_opt;
    star_opt.use_complement = true;
    int b = 0;
    bool comp = false;
    std::vector<int> ctw;
    const double o1 =
        vawo_solve_group(ntw, grad, lut, 255, plain_opt, b, comp, ctw);
    const double o2 =
        vawo_solve_group(ntw, grad, lut, 255, star_opt, b, comp, ctw);
    EXPECT_LE(o2, o1 + 1e-12);
  }
}

TEST(Vawo, OffsetStaysInRegisterRange) {
  const RLut lut = lut_for(1.0);
  VawoOptions opt;
  opt.offsets.offset_bits = 8;
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> ntw;
    std::vector<double> grad;
    for (int i = 0; i < 4; ++i) {
      ntw.push_back(static_cast<int>(rng.uniform_int(0, 255)));
      grad.push_back(1.0);
    }
    int b = 0;
    bool comp = false;
    std::vector<int> ctw;
    vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
    EXPECT_GE(b, -128);
    EXPECT_LE(b, 127);
  }
}

TEST(Vawo, HighGradientWeightGetsLowerVarianceChoice) {
  // Two groups identical except one weight's gradient: the solver may pick
  // a different trade-off, but the weighted objective of the high-gradient
  // group must dominate correctly (monotone in gradient scaling).
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{128, 128};
  const double o_lo =
      vawo_solve_group(ntw, {0.1, 0.1}, lut, 255, opt, b, comp, ctw);
  const double o_hi =
      vawo_solve_group(ntw, {1.0, 1.0}, lut, 255, opt, b, comp, ctw);
  EXPECT_NEAR(o_hi, o_lo * 100.0, o_lo * 5.0);  // scales ~ grad^2
}

TEST(Vawo, RejectsEmptyOrMismatchedGroup) {
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  int b;
  bool comp;
  std::vector<int> ctw;
  EXPECT_THROW(vawo_solve_group({}, {}, lut, 255, opt, b, comp, ctw),
               std::invalid_argument);
  EXPECT_THROW(
      vawo_solve_group({1, 2}, {1.0}, lut, 255, opt, b, comp, ctw),
      std::invalid_argument);
}

TEST(Vawo, RejectsHostileOffsetConfig) {
  // offset_bits = 0 would shift by -1 (UB) and enumerate nothing, leaving
  // the out-parameters uninitialized; >= 31 overflows the register range.
  // Both must fail loudly at the solver boundary, never solve silently.
  const RLut lut = lut_for(0.5);
  int b;
  bool comp;
  std::vector<int> ctw;
  for (int bits : {0, -3, 31, 64}) {
    VawoOptions opt;
    opt.offsets.offset_bits = bits;
    EXPECT_THROW(
        vawo_solve_group({10, 20}, {1.0, 1.0}, lut, 255, opt, b, comp, ctw),
        rdo::core::ContractViolation)
        << "offset_bits = " << bits;
    EXPECT_THROW(rdo::core::VawoTable::build(lut, 255, opt.offsets,
                                             opt.penalize_bias),
                 rdo::core::ContractViolation)
        << "offset_bits = " << bits;
  }
  const auto lq = make_lq(4, 1, {1, 2, 3, 4});
  std::vector<double> grads(4, 1.0);
  VawoOptions bad_m;
  bad_m.offsets.m = 0;
  EXPECT_THROW(vawo_layer(lq, grads, lut, bad_m),
               rdo::core::ContractViolation);
}

TEST(Vawo, SolveAlwaysWritesOutParameters) {
  // A successful solve must never leave the out-parameters untouched
  // (the historical uninitialized-read hazard in vawo_layer).
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  opt.offsets.offset_bits = 1;  // smallest legal register: b in {-1, 0}
  int b = -999;
  bool comp = true;
  std::vector<int> ctw;
  vawo_solve_group({5, 6}, {1.0, 1.0}, lut, 255, opt, b, comp, ctw);
  EXPECT_GE(b, -1);
  EXPECT_LE(b, 0);
  EXPECT_FALSE(comp);  // complement disabled
  EXPECT_EQ(ctw.size(), 2u);
}

TEST(Vawo, LayerAssignmentShapes) {
  const RLut lut = lut_for(0.5);
  std::vector<int> q(32 * 3);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = static_cast<int>(i * 7 % 256);
  }
  const auto lq = make_lq(32, 3, q);
  std::vector<double> grads(q.size(), 0.5);
  VawoOptions opt;
  opt.offsets.m = 8;
  const VawoResult res = vawo_layer(lq, grads, lut, opt);
  EXPECT_EQ(res.groups_per_col, 4);
  EXPECT_EQ(res.ctw.size(), q.size());
  EXPECT_EQ(res.offsets.size(), 12u);
  EXPECT_EQ(res.complemented.size(), 12u);
  EXPECT_GE(res.total_objective, 0.0);
}

TEST(Vawo, LayerHandlesRaggedTailGroup) {
  const RLut lut = lut_for(0.5);
  std::vector<int> q(10, 100);  // 10 rows, 1 col, m = 4 -> groups 4+4+2
  const auto lq = make_lq(10, 1, q);
  std::vector<double> grads(q.size(), 1.0);
  VawoOptions opt;
  opt.offsets.m = 4;
  const VawoResult res = vawo_layer(lq, grads, lut, opt);
  EXPECT_EQ(res.groups_per_col, 3);
}

TEST(Vawo, LayerRejectsGradientMismatch) {
  const RLut lut = lut_for(0.5);
  const auto lq = make_lq(4, 1, {1, 2, 3, 4});
  std::vector<double> grads(3, 1.0);
  VawoOptions opt;
  EXPECT_THROW(vawo_layer(lq, grads, lut, opt), std::invalid_argument);
}

TEST(Vawo, PlainLayerIsIdentityAssignment) {
  const auto lq = make_lq(8, 2, std::vector<int>(16, 42));
  const VawoResult res = plain_layer(lq, 4);
  EXPECT_EQ(res.groups_per_col, 2);
  for (int v : res.ctw) EXPECT_EQ(v, 42);
  for (float b : res.offsets) EXPECT_EQ(b, 0.0f);
  for (auto c : res.complemented) EXPECT_EQ(c, 0);
}

TEST(Vawo, StrictPaperObjectiveStillSolves) {
  // penalize_bias = false (the paper's exact Eq. 5 objective).
  const RLut lut = lut_for(0.5);
  VawoOptions opt;
  opt.penalize_bias = false;
  int b = 0;
  bool comp = false;
  std::vector<int> ctw;
  const std::vector<int> ntw{10, 240};
  const std::vector<double> grad{1.0, 1.0};
  const double obj = vawo_solve_group(ntw, grad, lut, 255, opt, b, comp, ctw);
  EXPECT_GE(obj, 0.0);
}
