// Whole-network device-level inference (sim::NetworkExecutor).
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/conv2d.h"
#include "nn/pooling.h"
#include "nn/optimizer.h"
#include "quant/act_quant.h"
#include "sim/network_executor.h"

using namespace rdo;
using namespace rdo::sim;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;
  float ideal = 0.0f;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 5;
    spec.train_per_class = 30;
    spec.test_per_class = 10;
    spec.seed = 44;
    ds = data::make_synthetic(spec);
    nn::Rng rng(8);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 24, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(24, 5, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 10; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
    ideal = nn::evaluate(net, ds.test(), 32).accuracy;
  }

  NetworkExecutorOptions options(double sigma, bool vawo) const {
    NetworkExecutorOptions o;
    o.exec.xbar.rows = 32;
    o.exec.xbar.cols = 32;
    o.exec.xbar.cell = {rram::CellKind::MLC2, 200.0};
    o.exec.xbar.variation.sigma = sigma;
    o.exec.xbar.active_wordlines = 8;
    o.exec.offsets.m = 8;
    o.use_vawo_star = vawo;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    o.seed = 17;
    return o;
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(NetworkExecutor, IdealDevicesMatchFloatAccuracy) {
  auto& f = fx();
  NetworkExecutor exec(f.net, f.ds.train(), f.options(0.0, false));
  EXPECT_NEAR(exec.evaluate(f.ds.test()), f.ideal, 0.06f);
}

TEST(NetworkExecutor, RejectsUnsupportedLayers) {
  nn::Rng rng(1);
  nn::Sequential bn_net;
  bn_net.emplace<nn::Conv2D>(1, 2, 3, 1, 1, rng);
  bn_net.emplace<rdo::nn::BatchNorm2D>(2);
  auto& f = fx();
  EXPECT_THROW(NetworkExecutor(bn_net, f.ds.train(), f.options(0.0, false)),
               std::invalid_argument);
}

namespace {

/// A small trained CNN shared by the device-level CNN tests.
nn::Sequential& trained_cnn() {
  static nn::Sequential* cnn = [] {
    auto* net = new nn::Sequential();
    auto& f = fx();
    nn::Rng rng(9);
    net->emplace<nn::Conv2D>(1, 6, 3, 1, 1, rng);
    net->emplace<nn::ReLU>();
    net->emplace<rdo::nn::MaxPool2D>(2);
    net->emplace<nn::Flatten>();
    net->emplace<nn::Dense>(6 * 5 * 5, 5, rng);
    nn::SGD opt(net->params(), 0.05f);
    for (int e = 0; e < 20; ++e) {
      nn::train_epoch(*net, opt, f.ds.train(), 16, rng);
    }
    return net;
  }();
  return *cnn;
}

}  // namespace

TEST(NetworkExecutor, CnnDeviceLogitsMatchFloatOnIdealDevices) {
  // A LeNet-class CNN executed entirely on simulated crossbars: conv
  // layers are lowered to one VMM per output position. With ideal
  // devices the only gap is 8-bit weight quantization, so logits track
  // the float network closely.
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  NetworkExecutor exec(cnn, f.ds.train(), f.options(0.0, false));
  nn::Tensor batch = nn::gather_batch(f.ds.test_images, {0});
  nn::Tensor logits = cnn.forward(batch, false);
  std::vector<double> x(100);
  for (int j = 0; j < 100; ++j) {
    x[static_cast<std::size_t>(j)] = f.ds.test_images[j];
  }
  const auto dev = exec.forward_image(x, 1, 10, 10);
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(dev[static_cast<std::size_t>(k)], logits[k],
                0.1 * std::max(1.0f, std::abs(logits[k])));
  }
}

TEST(NetworkExecutor, CnnAccuracyMatchesOnIdealDevices) {
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  const float ideal = nn::evaluate(cnn, f.ds.test(), 32).accuracy;
  NetworkExecutor exec(cnn, f.ds.train(), f.options(0.0, false));
  const float device = exec.evaluate(f.ds.test());
  EXPECT_NEAR(device, ideal, 0.08f);
}

TEST(NetworkExecutor, CnnRecoveryUnderVariation) {
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  NetworkExecutor plain(cnn, f.ds.train(), f.options(0.5, false));
  NetworkExecutor full(cnn, f.ds.train(), f.options(0.5, true));
  full.apply_mean_init_offsets();
  EXPECT_GE(full.evaluate(f.ds.test(), 25),
            plain.evaluate(f.ds.test(), 25));
}

TEST(NetworkExecutor, VariationDegradesPlainDeployment) {
  auto& f = fx();
  NetworkExecutor exec(f.net, f.ds.train(), f.options(0.5, false));
  EXPECT_LT(exec.evaluate(f.ds.test()), f.ideal - 0.2f);
}

TEST(NetworkExecutor, VawoStarPlusMeanInitRecoversOnDevices) {
  // The paper's pipeline, executed entirely at device level: VAWO* CTWs,
  // then the posteriori offset warm start on the measured conductances.
  auto& f = fx();
  NetworkExecutor plain(f.net, f.ds.train(), f.options(0.5, false));
  const float a_plain = plain.evaluate(f.ds.test());

  NetworkExecutor full(f.net, f.ds.train(), f.options(0.5, true));
  full.apply_mean_init_offsets();
  const float a_full = full.evaluate(f.ds.test());
  EXPECT_GT(a_full, a_plain + 0.15f);
  EXPECT_GT(a_full, f.ideal - 0.25f);
}

TEST(NetworkExecutor, MeanInitImprovesOverVawoAlone) {
  auto& f = fx();
  NetworkExecutor exec(f.net, f.ds.train(), f.options(0.5, true));
  const float before = exec.evaluate(f.ds.test());
  exec.apply_mean_init_offsets();
  const float after = exec.evaluate(f.ds.test());
  EXPECT_GE(after, before - 0.02f);
}

TEST(NetworkExecutor, CrossbarCountAccounting) {
  auto& f = fx();
  NetworkExecutor exec(f.net, f.ds.train(), f.options(0.0, false));
  // Layer 1: 100x24 weights, 4 cells each on 32x32 arrays: 8 weights/row
  // -> 3 col tiles x 4 row tiles = 12. Layer 2: 24x5 -> 1.
  EXPECT_EQ(exec.crossbar_count(), 13);
  EXPECT_EQ(exec.layer_count(), 3u);  // dense, relu, dense
}

TEST(NetworkExecutor, NetworkWeightsUntouched) {
  auto& f = fx();
  const float before = nn::evaluate(f.net, f.ds.test(), 32).accuracy;
  {
    NetworkExecutor exec(f.net, f.ds.train(), f.options(0.7, true));
    exec.apply_mean_init_offsets();
    (void)exec.evaluate(f.ds.test());
  }
  EXPECT_FLOAT_EQ(nn::evaluate(f.net, f.ds.test(), 32).accuracy, before);
}
