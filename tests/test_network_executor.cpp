// Whole-network device-level inference (sim::DeviceSimBackend executing
// a compiled core::DeploymentPlan).
#include <gtest/gtest.h>

#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/conv2d.h"
#include "nn/pooling.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "quant/act_quant.h"
#include "sim/device_backend.h"

using namespace rdo;
using namespace rdo::sim;

namespace {

struct Fixture {
  data::SyntheticDataset ds;
  nn::Sequential net;
  float ideal = 0.0f;

  Fixture() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 10;
    spec.classes = 5;
    spec.train_per_class = 30;
    spec.test_per_class = 10;
    spec.seed = 44;
    ds = data::make_synthetic(spec);
    nn::Rng rng(8);
    net.emplace<nn::Flatten>();
    net.emplace<nn::Dense>(100, 24, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Dense>(24, 5, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 10; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
    ideal = nn::evaluate(net, ds.test(), 32).accuracy;
  }

  core::DeployOptions options(double sigma, core::Scheme scheme) const {
    core::DeployOptions o;
    o.scheme = scheme;
    o.offsets.m = 8;
    o.cell = {rram::CellKind::MLC2, 200.0};
    o.variation.sigma = sigma;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    // Mean-measurement warm start only: the device-level recovery tests
    // mirror the paper's posteriori offset initialization.
    o.pwt.epochs = 0;
    o.seed = 17;
    return o;
  }

  DeviceSimOptions geometry(std::int64_t max_samples = 0) const {
    DeviceSimOptions d;
    d.xbar_rows = 32;
    d.xbar_cols = 32;
    d.active_wordlines = 8;
    d.eval_max_samples = max_samples;
    return d;
  }

  /// A backend bundled with the plan it executes (the backend holds a
  /// reference into the plan, so the two share a lifetime).
  struct Deployed {
    std::unique_ptr<core::DeploymentPlan> plan;
    std::unique_ptr<DeviceSimBackend> backend;
    DeviceSimBackend* operator->() const { return backend.get(); }
  };

  /// Compile + build + program one cycle in one step.
  Deployed deployed(const nn::Layer& network, double sigma,
                    core::Scheme scheme,
                    std::int64_t max_samples = 0) const {
    Deployed d;
    d.plan = std::make_unique<core::DeploymentPlan>(
        core::compile_plan(network, options(sigma, scheme), ds.train()));
    d.backend = std::make_unique<DeviceSimBackend>(*d.plan, network,
                                                  geometry(max_samples));
    d.backend->program_cycle(0);
    return d;
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(NetworkExecutor, IdealDevicesMatchFloatAccuracy) {
  auto& f = fx();
  const core::DeploymentPlan plan =
      core::compile_plan(f.net, f.options(0.0, core::Scheme::Plain),
                         f.ds.train());
  DeviceSimBackend exec(plan, f.net, f.geometry());
  exec.program_cycle(0);
  EXPECT_NEAR(exec.evaluate(f.ds.test()), f.ideal, 0.06f);
}

TEST(NetworkExecutor, RejectsUnsupportedLayers) {
  nn::Rng rng(1);
  nn::Sequential bn_net;
  bn_net.emplace<nn::Conv2D>(1, 2, 3, 1, 1, rng);
  bn_net.emplace<rdo::nn::BatchNorm2D>(2);
  auto& f = fx();
  // The conv layer compiles (it is crossbar-mappable), but BatchNorm has
  // no device-level stage, so the backend must refuse the network.
  const core::DeploymentPlan plan = core::compile_plan(
      bn_net, f.options(0.0, core::Scheme::Plain), f.ds.train());
  EXPECT_THROW(DeviceSimBackend(plan, bn_net, f.geometry()),
               std::invalid_argument);
}

namespace {

/// A small trained CNN shared by the device-level CNN tests.
nn::Sequential& trained_cnn() {
  static nn::Sequential* cnn = [] {
    auto* net = new nn::Sequential();
    auto& f = fx();
    nn::Rng rng(9);
    net->emplace<nn::Conv2D>(1, 6, 3, 1, 1, rng);
    net->emplace<nn::ReLU>();
    net->emplace<rdo::nn::MaxPool2D>(2);
    net->emplace<nn::Flatten>();
    net->emplace<nn::Dense>(6 * 5 * 5, 5, rng);
    nn::SGD opt(net->params(), 0.05f);
    for (int e = 0; e < 20; ++e) {
      nn::train_epoch(*net, opt, f.ds.train(), 16, rng);
    }
    return net;
  }();
  return *cnn;
}

}  // namespace

TEST(NetworkExecutor, CnnDeviceLogitsMatchFloatOnIdealDevices) {
  // A LeNet-class CNN executed entirely on simulated crossbars: conv
  // layers are lowered to one VMM per output position. With ideal
  // devices the only gap is 8-bit weight quantization, so logits track
  // the float network closely.
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  const Fixture::Deployed exec = f.deployed(cnn, 0.0, core::Scheme::Plain);
  nn::Tensor batch = nn::gather_batch(f.ds.test_images, {0});
  nn::Tensor logits = cnn.forward(batch, false);
  std::vector<double> x(100);
  for (int j = 0; j < 100; ++j) {
    x[static_cast<std::size_t>(j)] = f.ds.test_images[j];
  }
  const auto dev = exec->forward_image(x, 1, 10, 10);
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(dev[static_cast<std::size_t>(k)], logits[k],
                0.1 * std::max(1.0f, std::abs(logits[k])));
  }
}

TEST(NetworkExecutor, CnnAccuracyMatchesOnIdealDevices) {
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  const float ideal = nn::evaluate(cnn, f.ds.test(), 32).accuracy;
  const Fixture::Deployed exec = f.deployed(cnn, 0.0, core::Scheme::Plain);
  const float device = exec->evaluate(f.ds.test());
  EXPECT_NEAR(device, ideal, 0.08f);
}

TEST(NetworkExecutor, CnnRecoveryUnderVariation) {
  auto& f = fx();
  nn::Sequential& cnn = trained_cnn();
  const Fixture::Deployed plain =
      f.deployed(cnn, 0.5, core::Scheme::Plain, 25);
  const Fixture::Deployed full =
      f.deployed(cnn, 0.5, core::Scheme::VAWOStarPWT, 25);
  full->tune(f.ds.train());
  EXPECT_GE(full->evaluate(f.ds.test()), plain->evaluate(f.ds.test()));
}

TEST(NetworkExecutor, VariationDegradesPlainDeployment) {
  auto& f = fx();
  const Fixture::Deployed exec = f.deployed(f.net, 0.5, core::Scheme::Plain);
  EXPECT_LT(exec->evaluate(f.ds.test()), f.ideal - 0.2f);
}

TEST(NetworkExecutor, VawoStarPlusMeanInitRecoversOnDevices) {
  // The paper's pipeline, executed entirely at device level: VAWO* CTWs,
  // then the posteriori offset warm start on the measured conductances.
  auto& f = fx();
  const Fixture::Deployed plain =
      f.deployed(f.net, 0.5, core::Scheme::Plain);
  const float a_plain = plain->evaluate(f.ds.test());

  const Fixture::Deployed full =
      f.deployed(f.net, 0.5, core::Scheme::VAWOStarPWT);
  full->tune(f.ds.train());
  const float a_full = full->evaluate(f.ds.test());
  EXPECT_GT(a_full, a_plain + 0.15f);
  EXPECT_GT(a_full, f.ideal - 0.25f);
}

TEST(NetworkExecutor, MeanInitImprovesOverVawoAlone) {
  // Averaged over a few CCV cycles: a single cycle's accuracies are one
  // borderline sample apart, so the comparison uses the mean.
  auto& f = fx();
  const Fixture::Deployed vawo =
      f.deployed(f.net, 0.5, core::Scheme::VAWOStar);
  const Fixture::Deployed full =
      f.deployed(f.net, 0.5, core::Scheme::VAWOStarPWT);
  float before = 0.0f, after = 0.0f;
  const int kCycles = 3;
  for (int c = 0; c < kCycles; ++c) {
    vawo->program_cycle(static_cast<std::uint64_t>(c));
    before += vawo->evaluate(f.ds.test());
    full->program_cycle(static_cast<std::uint64_t>(c));
    full->tune(f.ds.train());
    after += full->evaluate(f.ds.test());
  }
  EXPECT_GE(after / kCycles, before / kCycles - 0.02f);
}

TEST(NetworkExecutor, CrossbarCountAccounting) {
  auto& f = fx();
  const Fixture::Deployed exec = f.deployed(f.net, 0.0, core::Scheme::Plain);
  // Layer 1: 100x24 weights, 4 cells each on 32x32 arrays: 8 weights/row
  // -> 3 col tiles x 4 row tiles = 12. Layer 2: 24x5 -> 1.
  EXPECT_EQ(exec->crossbar_count(), 13);
  EXPECT_EQ(exec->layer_count(), 3u);  // dense, relu, dense
}

TEST(NetworkExecutor, NetworkWeightsUntouched) {
  auto& f = fx();
  const float before = nn::evaluate(f.net, f.ds.test(), 32).accuracy;
  {
    const Fixture::Deployed exec =
        f.deployed(f.net, 0.7, core::Scheme::VAWOStarPWT);
    exec->tune(f.ds.train());
    (void)exec->evaluate(f.ds.test());
  }
  EXPECT_FLOAT_EQ(nn::evaluate(f.net, f.ds.test(), 32).accuracy, before);
}
