// Model builders: shapes, crossbar-layer inventory, trainability.
#include <gtest/gtest.h>

#include "models/lenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/matrix_op.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "quant/act_quant.h"

using namespace rdo;
using namespace rdo::models;

namespace {

int count_matrix_ops(nn::Layer& net) {
  std::vector<nn::Layer*> all;
  collect_layers(&net, all);
  int n = 0;
  for (nn::Layer* l : all) {
    if (dynamic_cast<nn::MatrixOp*>(l)) ++n;
  }
  return n;
}

int count_act_quants(nn::Layer& net) {
  std::vector<nn::Layer*> all;
  collect_layers(&net, all);
  int n = 0;
  for (nn::Layer* l : all) {
    if (dynamic_cast<quant::ActQuant*>(l)) ++n;
  }
  return n;
}

nn::Tensor random_images(std::int64_t n, std::int64_t c, std::int64_t hw,
                         std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor x({n, c, hw, hw});
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return x;
}

}  // namespace

TEST(Models, LeNetForwardShape) {
  nn::Rng rng(1);
  auto net = make_lenet({}, rng);
  nn::Tensor y = net->forward(random_images(2, 1, 28, 2), false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(Models, LeNetHasFiveCrossbarLayers) {
  nn::Rng rng(1);
  auto net = make_lenet({}, rng);
  EXPECT_EQ(count_matrix_ops(*net), 5);  // conv x2 + fc x3
}

TEST(Models, LeNetActQuantPerCrossbarLayer) {
  nn::Rng rng(1);
  auto net = make_lenet({}, rng);
  EXPECT_EQ(count_act_quants(*net), 5);
  LeNetConfig cfg;
  cfg.act_quant = false;
  auto bare = make_lenet(cfg, rng);
  EXPECT_EQ(count_act_quants(*bare), 0);
}

TEST(Models, ResNetForwardShape) {
  nn::Rng rng(2);
  ResNetConfig cfg;
  cfg.base_channels = 4;
  auto net = make_resnet(cfg, rng);
  nn::Tensor y = net->forward(random_images(2, 3, 32, 3), false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(Models, ResNetLayerInventory) {
  nn::Rng rng(2);
  ResNetConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 1;
  auto net = make_resnet(cfg, rng);
  // stem conv + 3 blocks x 2 convs + 2 projection shortcuts + fc = 10.
  EXPECT_EQ(count_matrix_ops(*net), 10);
}

TEST(Models, ResNetDepthScalesWithBlocks) {
  nn::Rng rng(2);
  ResNetConfig one;
  one.base_channels = 4;
  one.blocks_per_stage = 1;
  ResNetConfig two = one;
  two.blocks_per_stage = 2;
  auto n1 = make_resnet(one, rng);
  auto n2 = make_resnet(two, rng);
  EXPECT_GT(count_matrix_ops(*n2), count_matrix_ops(*n1));
}

TEST(Models, VggForwardShape) {
  nn::Rng rng(3);
  VggConfig cfg;
  cfg.base_channels = 4;
  auto net = make_vgg(cfg, rng);
  nn::Tensor y = net->forward(random_images(2, 3, 32, 4), false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(Models, VggLayerInventory) {
  nn::Rng rng(3);
  VggConfig cfg;
  cfg.base_channels = 4;
  cfg.stacks = 3;
  auto net = make_vgg(cfg, rng);
  EXPECT_EQ(count_matrix_ops(*net), 8);  // 6 convs + 2 fc
}

TEST(Models, LeNetTrainsOnToyTask) {
  nn::Rng rng(4);
  auto net = make_lenet({}, rng);
  // Two-class toy: class = bright vs dark image.
  nn::Tensor images({20, 1, 28, 28});
  std::vector<int> labels;
  for (std::int64_t i = 0; i < 20; ++i) {
    const int cls = static_cast<int>(i % 2);
    labels.push_back(cls);
    for (std::int64_t j = 0; j < 28 * 28; ++j) {
      images[i * 28 * 28 + j] = cls ? 0.9f : 0.1f;
    }
  }
  nn::DataView view{&images, &labels};
  nn::SGD opt(net->params(), 0.01f);
  float first = 0.0f, last = 0.0f;
  for (int e = 0; e < 15; ++e) {
    const auto st = nn::train_epoch(*net, opt, view, 10, rng);
    if (e == 0) first = st.loss;
    last = st.loss;
  }
  EXPECT_LT(last, first);
  EXPECT_GT(nn::evaluate(*net, view, 10).accuracy, 0.9f);
}

TEST(Models, ResNetGradientsFlowToStem) {
  nn::Rng rng(5);
  ResNetConfig cfg;
  cfg.base_channels = 4;
  auto net = make_resnet(cfg, rng);
  nn::Tensor images = random_images(4, 3, 32, 6);
  std::vector<int> labels{0, 1, 2, 3};
  nn::DataView view{&images, &labels};
  accumulate_mean_gradients(*net, view, 4);
  // The first crossbar layer (stem conv) must receive gradient.
  std::vector<nn::Layer*> all;
  collect_layers(net.get(), all);
  for (nn::Layer* l : all) {
    if (auto* op = dynamic_cast<nn::MatrixOp*>(l)) {
      double g = 0.0;
      for (std::int64_t r = 0; r < op->fan_in(); ++r) {
        for (std::int64_t c = 0; c < op->fan_out(); ++c) {
          g += std::abs(op->weight_grad_at(r, c));
        }
      }
      EXPECT_GT(g, 0.0);
      break;
    }
  }
}

TEST(Models, CustomImageSizeLeNet) {
  nn::Rng rng(6);
  LeNetConfig cfg;
  cfg.image_size = 12;
  auto net = make_lenet(cfg, rng);
  nn::Tensor y = net->forward(random_images(1, 1, 12, 7), false);
  EXPECT_EQ(y.dim(1), 10);
}
