// Deployment pipeline: compile (quantize -> assign) -> program ->
// (tune) -> eval, split into a shared DeploymentPlan plus an
// EffectiveWeightBackend execution stage.
#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/deploy.h"
#include "core/plan.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "quant/act_quant.h"

using namespace rdo;
using namespace rdo::core;

namespace {

/// Shared fixture: a small trained MLP on a small synthetic task.
struct TrainedMlp {
  data::SyntheticDataset ds;
  nn::Sequential net;
  float ideal = 0.0f;

  TrainedMlp() {
    data::SyntheticSpec spec = data::mnist_like();
    spec.height = spec.width = 12;
    spec.train_per_class = 40;
    spec.test_per_class = 12;
    spec.noise = 0.15;
    spec.max_shift = 1.0;
    spec.seed = 5;
    ds = data::make_synthetic(spec);

    nn::Rng rng(2);
    net.emplace<nn::Flatten>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(12 * 12, 32, rng);
    net.emplace<nn::ReLU>();
    net.emplace<quant::ActQuant>(8);
    net.emplace<nn::Dense>(32, 10, rng);
    nn::SGD opt(net.params(), 0.1f);
    for (int e = 0; e < 12; ++e) {
      nn::train_epoch(net, opt, ds.train(), 16, rng);
    }
    ideal = nn::evaluate(net, ds.test(), 32).accuracy;
  }

  DeployOptions base_options(Scheme s, double sigma = 0.5) const {
    DeployOptions o;
    o.scheme = s;
    o.offsets.m = 16;
    o.cell = {rram::CellKind::SLC, 200.0};
    o.variation.sigma = sigma;
    o.lut_k_sets = 8;
    o.lut_j_cycles = 8;
    o.grad_samples = 128;
    o.pwt.epochs = 2;
    o.pwt.max_samples = 200;
    o.seed = 3;
    return o;
  }
};

TrainedMlp& fixture() {
  static TrainedMlp f;
  return f;
}

}  // namespace

TEST(Deploy, IdealModelIsAccurate) {
  EXPECT_GT(fixture().ideal, 0.9f);
}

TEST(Deploy, ZeroVariationMatchesQuantizedAccuracy) {
  auto& f = fixture();
  for (Scheme s : {Scheme::Plain, Scheme::VAWOStar, Scheme::VAWOStarPWT}) {
    DeployOptions o = f.base_options(s, 0.0);
    const SchemeResult res =
        run_scheme(f.net, o, f.ds.train(), f.ds.test(), 1);
    EXPECT_NEAR(res.mean_accuracy, f.ideal, 0.06f)
        << "scheme " << to_string(s);
  }
}

TEST(Deploy, PlainCollapsesUnderLargeVariation) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain, 0.5);
  const SchemeResult res = run_scheme(f.net, o, f.ds.train(), f.ds.test(), 2);
  EXPECT_LT(res.mean_accuracy, f.ideal - 0.25f);
}

TEST(Deploy, SchemeOrderingUnderVariation) {
  auto& f = fixture();
  auto acc = [&](Scheme s) {
    DeployOptions o = f.base_options(s, 0.5);
    return run_scheme(f.net, o, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  };
  const float plain = acc(Scheme::Plain);
  const float vawo = acc(Scheme::VAWO);
  const float star = acc(Scheme::VAWOStar);
  const float full = acc(Scheme::VAWOStarPWT);
  EXPECT_GT(vawo, plain);
  EXPECT_GE(star, vawo - 0.02f);
  EXPECT_GT(full, plain + 0.3f);
  EXPECT_GT(full, f.ideal - 0.12f);  // near-ideal recovery
}

TEST(Deploy, CallerNetworkStaysUntouched) {
  // Backends deploy onto a private twin; the caller's float network must
  // come through the whole pipeline bit-identical.
  auto& f = fixture();
  const float before = nn::evaluate(f.net, f.ds.test(), 32).accuracy;
  {
    DeployOptions o = f.base_options(Scheme::VAWOStarPWT, 0.8);
    const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
    EffectiveWeightBackend backend(plan, f.net);
    backend.program_cycle(0);
    backend.tune(f.ds.train());
    (void)backend.evaluate(f.ds.test());
  }
  const float after = nn::evaluate(f.net, f.ds.test(), 32).accuracy;
  EXPECT_FLOAT_EQ(before, after);
}

TEST(Deploy, RequiresProgramCycleBeforeTuneOrEvaluate) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::VAWOStarPWT);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  EXPECT_THROW(backend.tune(f.ds.train()), std::logic_error);
  EXPECT_THROW(backend.evaluate(f.ds.test()), std::logic_error);
}

TEST(Deploy, ThrowsOnNetworkWithoutCrossbarLayers) {
  nn::Sequential empty;
  empty.emplace<nn::Flatten>();
  DeployOptions o;
  data::SyntheticDataset& ds = fixture().ds;
  EXPECT_THROW(compile_plan(empty, o, ds.train()), std::invalid_argument);
}

TEST(Deploy, BackendRejectsMismatchedNetwork) {
  // A plan compiled for one architecture must refuse a different one.
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  nn::Rng rng(17);
  nn::Sequential other;
  other.emplace<nn::Flatten>();
  other.emplace<nn::Dense>(12 * 12, 10, rng);
  EXPECT_THROW(EffectiveWeightBackend(plan, other), std::invalid_argument);
}

TEST(Deploy, CyclesDifferUnderCcv) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain, 0.5);
  const SchemeResult res = run_scheme(f.net, o, f.ds.train(), f.ds.test(), 3);
  // At least two of the three cycles should give different accuracies
  // (different CRWs each cycle).
  const bool all_same = res.per_cycle[0] == res.per_cycle[1] &&
                        res.per_cycle[1] == res.per_cycle[2];
  EXPECT_FALSE(all_same);
}

TEST(Deploy, VawoStarReducesReadPower) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::VAWOStar, 0.5);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EXPECT_LT(plan.assigned_read_power(), plan.plain_read_power());
}

TEST(Deploy, PlainSchemeReadPowerRatioIsOne) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain, 0.5);
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EXPECT_DOUBLE_EQ(plan.assigned_read_power(), plan.plain_read_power());
}

TEST(Deploy, CrossbarCountMatchesTiling) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain);
  o.cell = {rram::CellKind::MLC2, 200.0};  // 4 cells/weight
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  // Layer 1: 144x32 -> rows 2 tiles... 144 rows > 128 -> 2 row tiles;
  // 32 cols * 4 cells = 128 -> 1 col tile. Layer 2: 32x10 -> 1.
  EXPECT_EQ(plan.total_crossbars(128, 128), 3);
}

TEST(Deploy, OffsetRegisterCountFollowsEq9) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::Plain);
  o.offsets.m = 16;
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  // Layer 1: ceil(144/16)=9 groups * 32 cols = 288; layer 2:
  // ceil(32/16)=2 * 10 = 20.
  EXPECT_EQ(plan.total_offset_registers(), 288 + 20);
}

TEST(Deploy, SlcAndMlcBothWork) {
  auto& f = fixture();
  for (rram::CellKind kind : {rram::CellKind::SLC, rram::CellKind::MLC2}) {
    DeployOptions o = f.base_options(Scheme::VAWOStarPWT, 0.5);
    o.cell = {kind, 200.0};
    const SchemeResult res =
        run_scheme(f.net, o, f.ds.train(), f.ds.test(), 1);
    EXPECT_GT(res.mean_accuracy, 0.5f) << to_string(kind);
  }
}

TEST(Deploy, FinerGranularityNoWorseForVawo) {
  auto& f = fixture();
  DeployOptions o16 = f.base_options(Scheme::VAWO, 0.5);
  o16.offsets.m = 16;
  DeployOptions o128 = f.base_options(Scheme::VAWO, 0.5);
  o128.offsets.m = 128;
  const float a16 =
      run_scheme(f.net, o16, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  const float a128 =
      run_scheme(f.net, o128, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  EXPECT_GE(a16, a128 - 0.05f);  // paper: coarser m degrades VAWO
}

TEST(Deploy, DeterministicGivenSeed) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::VAWOStar, 0.5);
  const SchemeResult a = run_scheme(f.net, o, f.ds.train(), f.ds.test(), 1);
  const SchemeResult b = run_scheme(f.net, o, f.ds.train(), f.ds.test(), 1);
  EXPECT_FLOAT_EQ(a.mean_accuracy, b.mean_accuracy);
}

TEST(Deploy, PureDdvMakesCyclesIdentical) {
  // With ddv_fraction = 1 there is no cycle-to-cycle component: every
  // programming cycle draws the same deviations... per cycle the DDV theta
  // is drawn from the cycle's stream, so what must hold instead is that
  // the run completes and per-cycle accuracies exist; with a DDV split of
  // 0 (pure CCV) consecutive cycles differ (asserted elsewhere). Here we
  // check the split plumbing end-to-end: total variance preserved means
  // accuracy in the same ballpark for any split.
  auto& f = fixture();
  DeployOptions base = f.base_options(Scheme::VAWOStarPWT, 0.4);
  float accs[3];
  int i = 0;
  for (double ddv : {0.0, 0.5, 1.0}) {
    DeployOptions o = base;
    o.variation.ddv_fraction = ddv;
    accs[i++] =
        run_scheme(f.net, o, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  }
  // The full method measures actual conductances post-writing, so it is
  // insensitive to how the variance splits between DDV and CCV.
  EXPECT_NEAR(accs[0], accs[2], 0.15f);
  EXPECT_NEAR(accs[0], accs[1], 0.15f);
}

TEST(Deploy, NarrowOffsetRegistersStillClamp) {
  auto& f = fixture();
  DeployOptions o = f.base_options(Scheme::VAWOStarPWT, 0.5);
  o.offsets.offset_bits = 4;  // range [-8, 7]
  const DeploymentPlan plan = compile_plan(f.net, o, f.ds.train());
  EffectiveWeightBackend backend(plan, f.net);
  backend.program_cycle(0);
  backend.tune(f.ds.train());
  for (const EffectiveWeightBackend::LayerState& ls : backend.layers()) {
    for (float b : ls.offsets) {
      EXPECT_GE(b, -8.0f);
      EXPECT_LE(b, 7.0f);
    }
  }
}

TEST(Deploy, WiderOffsetRegistersNoWorse) {
  auto& f = fixture();
  DeployOptions narrow = f.base_options(Scheme::VAWOStar, 0.5);
  narrow.offsets.offset_bits = 4;
  DeployOptions wide = f.base_options(Scheme::VAWOStar, 0.5);
  wide.offsets.offset_bits = 8;
  const float a4 =
      run_scheme(f.net, narrow, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  const float a8 =
      run_scheme(f.net, wide, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  EXPECT_GE(a8, a4 - 0.05f);
}

class DeployMatrix
    : public ::testing::TestWithParam<
          std::tuple<core::Scheme, rram::CellKind, rram::VariationScope>> {};

TEST_P(DeployMatrix, EveryConfigurationRunsAndBeatsNothing) {
  // Broad sweep over the full configuration space: every (scheme, cell,
  // variation-scope) combination must deploy, evaluate above chance-floor
  // sanity, leave the caller's network untouched, and — for the
  // offset-based schemes — never fall below plain by a wide margin.
  const auto [scheme, cell, scope] = GetParam();
  auto& f = fixture();
  DeployOptions o = f.base_options(scheme, 0.4);
  o.cell = {cell, 200.0};
  o.variation.scope = scope;
  const float before = nn::evaluate(f.net, f.ds.test(), 32).accuracy;
  const SchemeResult res = run_scheme(f.net, o, f.ds.train(), f.ds.test(), 1);
  EXPECT_GT(res.mean_accuracy, 0.05f);
  EXPECT_LE(res.mean_accuracy, 1.0f);
  if (scheme == Scheme::VAWOStarPWT) {
    DeployOptions p = f.base_options(Scheme::Plain, 0.4);
    p.cell = {cell, 200.0};
    p.variation.scope = scope;
    const float plain =
        run_scheme(f.net, p, f.ds.train(), f.ds.test(), 1).mean_accuracy;
    EXPECT_GE(res.mean_accuracy, plain - 0.05f);
  }
  // The float network came through untouched.
  EXPECT_FLOAT_EQ(nn::evaluate(f.net, f.ds.test(), 32).accuracy, before);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, DeployMatrix,
    ::testing::Combine(
        ::testing::Values(Scheme::Plain, Scheme::VAWO, Scheme::VAWOStar,
                          Scheme::PWT, Scheme::VAWOStarPWT),
        ::testing::Values(rram::CellKind::SLC, rram::CellKind::MLC2),
        ::testing::Values(rram::VariationScope::PerWeight,
                          rram::VariationScope::PerCell)));

TEST(Deploy, StuckAtFaultsDegradePlainButPwtCompensates) {
  auto& f = fixture();
  DeployOptions plain = f.base_options(Scheme::Plain, 0.2);
  plain.faults.stuck_hrs_rate = 0.05;
  plain.faults.stuck_lrs_rate = 0.05;
  DeployOptions full = f.base_options(Scheme::VAWOStarPWT, 0.2);
  full.faults = plain.faults;
  const float a_plain =
      run_scheme(f.net, plain, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  const float a_full =
      run_scheme(f.net, full, f.ds.train(), f.ds.test(), 2).mean_accuracy;
  EXPECT_GT(a_full, a_plain);
}

TEST(Deploy, SchemeNames) {
  EXPECT_STREQ(to_string(Scheme::Plain), "plain");
  EXPECT_STREQ(to_string(Scheme::VAWOStar), "VAWO*");
  EXPECT_STREQ(to_string(Scheme::VAWOStarPWT), "VAWO*+PWT");
}

TEST(Deploy, ParseSchemeRoundTripsEveryScheme) {
  for (Scheme s : {Scheme::Plain, Scheme::VAWO, Scheme::VAWOStar,
                   Scheme::PWT, Scheme::VAWOStarPWT}) {
    const auto parsed = parse_scheme(to_string(s));
    ASSERT_TRUE(parsed.has_value()) << to_string(s);
    EXPECT_EQ(*parsed, s) << to_string(s);
  }
}

TEST(Deploy, ParseSchemeAcceptsCliSpellings) {
  // The CLI uses lowercase spellings; both case conventions must map to
  // the same scheme.
  EXPECT_EQ(parse_scheme("plain"), Scheme::Plain);
  EXPECT_EQ(parse_scheme("vawo"), Scheme::VAWO);
  EXPECT_EQ(parse_scheme("vawo*"), Scheme::VAWOStar);
  EXPECT_EQ(parse_scheme("pwt"), Scheme::PWT);
  EXPECT_EQ(parse_scheme("vawo*+pwt"), Scheme::VAWOStarPWT);
}

TEST(Deploy, ParseSchemeRejectsUnknownNames) {
  EXPECT_FALSE(parse_scheme("").has_value());
  EXPECT_FALSE(parse_scheme("vawo**").has_value());
  EXPECT_FALSE(parse_scheme("plain ").has_value());
  EXPECT_FALSE(parse_scheme("vawo+pwt").has_value());
  EXPECT_FALSE(parse_scheme("offset").has_value());
}
