// Numerical gradient checks and shape/semantics tests for every layer.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

using namespace rdo::nn;

namespace {

/// L(x) = sum_i coeff_i * layer(x)_i; checks analytic dL/dx and dL/dparams
/// against central finite differences.
void grad_check(Layer& layer, Tensor x, bool train = true,
                double tol = 2e-2) {
  Tensor y = layer.forward(x, train);
  Rng rng(99);
  Tensor coeff(y.shape());
  for (std::int64_t i = 0; i < coeff.size(); ++i) {
    coeff[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  auto loss = [&]() {
    Tensor out = layer.forward(x, train);
    double l = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i) l += coeff[i] * out[i];
    return l;
  };

  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  (void)layer.forward(x, train);
  Tensor grad_in = layer.backward(coeff);

  const double eps = 1e-3;
  // Input gradient: probe a subset of positions.
  const std::int64_t stride_probe = std::max<std::int64_t>(1, x.size() / 24);
  for (std::int64_t i = 0; i < x.size(); i += stride_probe) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = loss();
    x[i] = orig - static_cast<float>(eps);
    const double lm = loss();
    x[i] = orig;
    const double num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in[i], num, tol * std::max(1.0, std::fabs(num)))
        << "input grad at " << i;
  }
  // Parameter gradients.
  for (Param* p : layer.params()) {
    Tensor& w = p->value;
    const std::int64_t pstride = std::max<std::int64_t>(1, w.size() / 16);
    for (std::int64_t i = 0; i < w.size(); i += pstride) {
      const float orig = w[i];
      w[i] = orig + static_cast<float>(eps);
      const double lp = loss();
      w[i] = orig - static_cast<float>(eps);
      const double lm = loss();
      w[i] = orig;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::fabs(num)))
          << "param grad at " << i;
    }
  }
}

Tensor random_input(std::vector<std::int64_t> shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(std::move(shape));
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

}  // namespace

TEST(Dense, ForwardShape) {
  Rng rng(1);
  Dense d(8, 5, rng);
  Tensor y = d.forward(random_input({3, 8}, 2), true);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 5);
}

TEST(Dense, FlattensHigherRankInput) {
  Rng rng(1);
  Dense d(12, 4, rng);
  Tensor y = d.forward(random_input({2, 3, 2, 2}, 3), true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
}

TEST(Dense, RejectsFanInMismatch) {
  Rng rng(1);
  Dense d(8, 5, rng);
  EXPECT_THROW(d.forward(random_input({3, 9}, 2), true),
               std::invalid_argument);
}

TEST(Dense, BiasApplied) {
  Rng rng(1);
  Dense d(2, 2, rng);
  d.weight_param().value.zero();
  d.bias_param().value[0] = 3.0f;
  d.bias_param().value[1] = -1.0f;
  Tensor y = d.forward(random_input({1, 2}, 4), true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), -1.0f);
}

TEST(Dense, GradCheck) {
  Rng rng(7);
  Dense d(6, 4, rng);
  grad_check(d, random_input({3, 6}, 8));
}

TEST(Dense, MatrixOpViewMatchesStorage) {
  Rng rng(1);
  Dense d(3, 2, rng);
  d.set_weight_at(2, 1, 0.5f);
  EXPECT_FLOAT_EQ(d.weight_at(2, 1), 0.5f);
  EXPECT_EQ(d.fan_in(), 3);
  EXPECT_EQ(d.fan_out(), 2);
  EXPECT_FLOAT_EQ(d.weight_param().value.at(2, 1), 0.5f);
}

TEST(Conv2D, ForwardShape) {
  Rng rng(1);
  Conv2D c(3, 8, 3, 1, 1, rng);
  Tensor y = c.forward(random_input({2, 3, 10, 10}, 5), true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 10);
  EXPECT_EQ(y.dim(3), 10);
}

TEST(Conv2D, StrideShape) {
  Rng rng(1);
  Conv2D c(2, 4, 3, 2, 1, rng);
  Tensor y = c.forward(random_input({1, 2, 8, 8}, 5), true);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2D, MatchesManualConvolution) {
  Rng rng(2);
  Conv2D c(1, 1, 3, 1, 0, rng, /*bias=*/false);
  // Set the kernel to an averaging filter.
  for (std::int64_t r = 0; r < 9; ++r) c.set_weight_at(r, 0, 1.0f / 9.0f);
  Tensor x({1, 1, 3, 3});
  x.fill(9.0f);
  Tensor y = c.forward(x, true);
  ASSERT_EQ(y.size(), 1);
  EXPECT_NEAR(y[0], 9.0f, 1e-5f);
}

TEST(Conv2D, GradCheckNoPad) {
  Rng rng(3);
  Conv2D c(2, 3, 3, 1, 0, rng);
  grad_check(c, random_input({2, 2, 5, 5}, 6));
}

TEST(Conv2D, GradCheckPadStride) {
  Rng rng(4);
  Conv2D c(2, 2, 3, 2, 1, rng);
  grad_check(c, random_input({2, 2, 6, 6}, 7));
}

TEST(Conv2D, FanInFanOut) {
  Rng rng(1);
  Conv2D c(3, 8, 5, 1, 2, rng);
  EXPECT_EQ(c.fan_in(), 3 * 5 * 5);
  EXPECT_EQ(c.fan_out(), 8);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU r;
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -0.5f;
  Tensor y = r.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU r;
  Tensor x({2});
  x[0] = -1.0f;
  x[1] = 1.0f;
  (void)r.forward(x, true);
  Tensor g({2});
  g.fill(5.0f);
  Tensor gi = r.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 5.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x = random_input({2, 3, 4, 4}, 9);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.rank(), 2);
  EXPECT_EQ(y.dim(1), 48);
  Tensor gi = f.backward(y);
  EXPECT_EQ(gi.rank(), 4);
  EXPECT_EQ(gi.dim(3), 4);
}

TEST(MaxPool2D, ForwardPicksMax) {
  MaxPool2D p(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 5;
  x[2] = 3;
  x[3] = 2;
  Tensor y = p.forward(x, true);
  ASSERT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D p(2);
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 5;
  x[2] = 3;
  x[3] = 2;
  (void)p.forward(x, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 7.0f;
  Tensor gi = p.backward(g);
  EXPECT_FLOAT_EQ(gi[1], 7.0f);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
}

TEST(MaxPool2D, GradCheck) {
  MaxPool2D p(2);
  grad_check(p, random_input({2, 2, 4, 4}, 10));
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool p;
  Tensor x({1, 2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 4.0f;   // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = 8.0f;   // channel 1
  Tensor y = p.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 8.0f);
}

TEST(GlobalAvgPool, GradCheck) {
  GlobalAvgPool p;
  grad_check(p, random_input({2, 3, 3, 3}, 11));
}

TEST(BatchNorm2D, NormalizesTrainBatch) {
  BatchNorm2D bn(2);
  Tensor x = random_input({4, 2, 3, 3}, 12);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    int count = 0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 9; ++i) {
        mean += y.at(n, c, i / 3, i % 3);
        ++count;
      }
    }
    mean /= count;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 9; ++i) {
        const double d = y.at(n, c, i / 3, i % 3) - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2D, GradCheckTrainMode) {
  BatchNorm2D bn(2);
  grad_check(bn, random_input({3, 2, 2, 2}, 13), /*train=*/true, 5e-2);
}

TEST(BatchNorm2D, GradCheckEvalMode) {
  BatchNorm2D bn(2);
  // Populate running stats first.
  for (int i = 0; i < 20; ++i) {
    (void)bn.forward(random_input({4, 2, 2, 2}, 14 + i), true);
  }
  grad_check(bn, random_input({3, 2, 2, 2}, 40), /*train=*/false);
}

TEST(BatchNorm2D, EvalUsesRunningStats) {
  BatchNorm2D bn(1);
  Tensor x({2, 1, 2, 2});
  x.fill(2.0f);
  // Eval before any training forward: running mean 0, var 1.
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 2.0f, 1e-3f);
}

TEST(Sequential, ChainsAndCollects) {
  Rng rng(1);
  Sequential s;
  s.emplace<Dense>(4, 8, rng);
  s.emplace<ReLU>();
  s.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(s.layer_count(), 3u);
  EXPECT_EQ(s.params().size(), 4u);  // two weights + two biases
  Tensor y = s.forward(random_input({2, 4}, 15), true);
  EXPECT_EQ(y.dim(1), 2);
  std::vector<Layer*> all;
  collect_layers(&s, all);
  EXPECT_EQ(all.size(), 4u);  // sequential + 3 children
}

TEST(Sequential, GradCheck) {
  Rng rng(2);
  Sequential s;
  s.emplace<Dense>(5, 6, rng);
  s.emplace<ReLU>();
  s.emplace<Dense>(6, 3, rng);
  grad_check(s, random_input({2, 5}, 16));
}

TEST(Residual, IdentityShortcutForward) {
  Rng rng(3);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2D>(2, 2, 3, 1, 1, rng, false);
  Residual res(std::move(main));
  Tensor x = random_input({1, 2, 4, 4}, 17);
  Tensor y = res.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Residual, IdentityPathDominatesWithZeroMain) {
  Rng rng(3);
  auto main = std::make_unique<Sequential>();
  auto* conv = main->emplace<Conv2D>(1, 1, 1, 1, 0, rng, false);
  conv->weight_param().value.zero();
  Residual res(std::move(main));
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = -1.0f;
  x[2] = 2.0f;
  x[3] = 0.0f;
  Tensor y = res.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 1.0f);   // ReLU(0 + 1)
  EXPECT_FLOAT_EQ(y[1], 0.0f);   // ReLU(0 - 1)
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Residual, GradCheckIdentity) {
  Rng rng(4);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2D>(2, 2, 3, 1, 1, rng);
  Residual res(std::move(main));
  grad_check(res, random_input({2, 2, 4, 4}, 18));
}

TEST(Residual, GradCheckProjection) {
  Rng rng(5);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2D>(2, 4, 3, 2, 1, rng);
  auto shortcut = std::make_unique<Sequential>();
  shortcut->emplace<Conv2D>(2, 4, 1, 2, 0, rng);
  Residual res(std::move(main), std::move(shortcut));
  grad_check(res, random_input({2, 2, 4, 4}, 19));
}

TEST(Residual, CollectsNestedChildren) {
  Rng rng(6);
  auto main = std::make_unique<Sequential>();
  main->emplace<Conv2D>(1, 1, 1, 1, 0, rng);
  auto shortcut = std::make_unique<Sequential>();
  shortcut->emplace<Conv2D>(1, 1, 1, 1, 0, rng);
  Residual res(std::move(main), std::move(shortcut));
  std::vector<Layer*> all;
  collect_layers(&res, all);
  // residual + 2 sequentials + 2 convs
  EXPECT_EQ(all.size(), 5u);
}
