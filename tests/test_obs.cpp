// Tests for the observability layer (src/obs): JSON round-trips, the
// recorder, BENCH document schema validation, and the end-to-end
// determinism contract — the deterministic sections of a report are
// byte-identical across RDO_THREADS settings for a fixed seed.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/deploy.h"
#include "obs/envvar.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/parallel.h"
#include "nn/sequential.h"
#include "obs/env.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quant/act_quant.h"

using rdo::obs::Json;

namespace {

/// Restores the pool width on scope exit (pattern from test_parallel.cpp).
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) : prev_(rdo::nn::thread_count()) {
    rdo::nn::set_thread_count(n);
  }
  ~ThreadGuard() { rdo::nn::set_thread_count(prev_); }

 private:
  int prev_;
};

Json sample_doc() {
  Json doc = Json::object();
  doc["int"] = std::int64_t{42};
  doc["negative"] = -7;
  doc["pi"] = 3.141592653589793;
  doc["tenth"] = 0.1;
  doc["third"] = 1.0 / 3.0;
  doc["tiny"] = 1.25e-7;
  doc["flag"] = true;
  doc["off"] = false;
  doc["nothing"];  // null
  doc["text"] = "quote \" backslash \\ newline \n tab \t";
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  doc["list"] = std::move(arr);
  Json nested = Json::object();
  nested["a"] = 1;
  nested["b"] = Json::array();
  doc["nested"] = std::move(nested);
  return doc;
}

}  // namespace

TEST(Json, CompactRoundTripIsByteStable) {
  const Json doc = sample_doc();
  const std::string once = doc.dump();
  const Json reparsed = Json::parse(once);
  EXPECT_EQ(reparsed.dump(), once);
}

TEST(Json, PrettyFormParsesToTheSameDocument) {
  const Json doc = sample_doc();
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json doc = Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mid"] = 3;
  EXPECT_EQ(doc.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NumbersKeepTheirTypeThroughAReparse) {
  const Json i = Json::parse("7");
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), 7);
  const Json d = Json::parse("7.0");
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(d.as_double(), 7.0);
  // A dumped Double reparses as Double even for integral values.
  const Json round = Json::parse(Json(2.0).dump());
  EXPECT_TRUE(round.is_double());
}

TEST(Json, DoubleFormattingRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 2.5, 1e-7, 123456789.125,
                   -0.0078125, 3.141592653589793}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v) << Json(v).dump();
  }
}

TEST(Json, UnicodeEscapesParse) {
  const Json j = Json::parse("\"\\u0041\\u0042\"");
  EXPECT_EQ(j.as_string(), "AB");
}

TEST(Json, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "1 2", "{\"a\":}", "\"unterminated",
        "{\"a\" 1}", "[1 2]", "nul"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\":1}");
  EXPECT_THROW((void)j.as_string(), std::logic_error);
  EXPECT_THROW((void)j.as_int(), std::logic_error);
  EXPECT_EQ(j.find("a")->as_int(), 1);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdo_test_obs.json").string();
  const Json doc = sample_doc();
  rdo::obs::write_json_file(doc, path);
  const Json back = rdo::obs::read_json_file(path);
  EXPECT_EQ(back.dump(), doc.dump());
  std::filesystem::remove(path);
}

TEST(Recorder, AccumulatesPhasesCountersGauges) {
  rdo::obs::Recorder rec;
  rec.add_phase("alpha", 1.5);
  rec.add_phase("alpha", 0.5);
  rec.add_phase("beta", 0.25);
  rec.incr("widgets");
  rec.incr("widgets", 4);
  rec.set_gauge("ratio", 0.75);
  rec.set_gauge("ratio", 0.5);  // last write wins
  EXPECT_DOUBLE_EQ(rec.phase_seconds("alpha"), 2.0);
  EXPECT_DOUBLE_EQ(rec.phase_seconds("beta"), 0.25);
  EXPECT_EQ(rec.counter("widgets"), 5);
  EXPECT_EQ(rec.counters_json().dump(), "{\"widgets\":5}");
  EXPECT_EQ(rec.gauges_json().dump(), "{\"ratio\":0.5}");
  // Phases keep first-use order.
  const Json phases = rec.phases_json();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases.at(0).find("name")->as_string(), "alpha");
}

TEST(BenchReport, DocumentValidatesAgainstSchema) {
  rdo::obs::BenchReport rep("unit_test", 99);
  rep.recorder().incr("things", 3);
  rep.recorder().set_gauge("level", 0.5);
  rep.results()["answer"] = 42;
  const Json doc = rep.document();
  std::string err;
  EXPECT_TRUE(rdo::obs::validate_bench_document(doc, &err)) << err;
  EXPECT_EQ(doc.find("schema_version")->as_int(),
            rdo::obs::kBenchSchemaVersion);
  EXPECT_EQ(doc.find("name")->as_string(), "unit_test");
  EXPECT_EQ(doc.find("env")->find("seed")->as_int(), 99);
  EXPECT_EQ(rep.exit_code(), 0);
}

TEST(BenchReport, ValidationCatchesBrokenDocuments) {
  rdo::obs::BenchReport rep("unit_test", 1);
  std::string err;

  Json wrong_version = rep.document();
  wrong_version["schema_version"] = 999;
  EXPECT_FALSE(rdo::obs::validate_bench_document(wrong_version, &err));

  Json no_name = rep.document();
  no_name["name"] = "";
  EXPECT_FALSE(rdo::obs::validate_bench_document(no_name, &err));

  Json bad_counters = rep.document();
  bad_counters["counters"]["oops"] = "not a number";
  EXPECT_FALSE(rdo::obs::validate_bench_document(bad_counters, &err));

  EXPECT_FALSE(rdo::obs::validate_bench_document(Json::parse("[]"), &err));
}

TEST(BenchReport, FailuresDriveTheExitCode) {
  rdo::obs::BenchReport rep("unit_test", 1);
  EXPECT_EQ(rep.exit_code(), 0);
  rep.add_failure("grid point 3", "boom");
  EXPECT_TRUE(rep.any_failure());
  EXPECT_EQ(rep.failure_count(), 1u);
  EXPECT_EQ(rep.exit_code(), 1);
  std::string err;
  const Json doc = rep.document();
  EXPECT_TRUE(rdo::obs::validate_bench_document(doc, &err)) << err;
  ASSERT_NE(doc.find("failures"), nullptr);
  EXPECT_EQ(doc.find("failures")->at(0).find("what")->as_string(), "boom");
}

TEST(Env, CaptureHasTheContractedKeys) {
  const Json env = rdo::obs::capture_env(7);
  EXPECT_EQ(env.find("seed")->as_int(), 7);
  EXPECT_GE(env.find("threads")->as_int(), 1);
  EXPECT_FALSE(env.find("build_type")->as_string().empty());
  EXPECT_FALSE(env.find("git_sha")->as_string().empty());
}

namespace {

/// Runs a small deployment under `threads` pool threads and returns the
/// deterministic sections of the resulting report.
std::string deterministic_report(int threads) {
  ThreadGuard guard(threads);

  rdo::data::SyntheticSpec spec = rdo::data::mnist_like();
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  const rdo::data::SyntheticDataset ds = rdo::data::make_synthetic(spec);

  rdo::nn::Rng rng(11);
  rdo::nn::Sequential net;
  net.emplace<rdo::nn::Flatten>();
  net.emplace<rdo::quant::ActQuant>(8);
  net.emplace<rdo::nn::Dense>(28 * 28, 16, rng);
  net.emplace<rdo::nn::ReLU>();
  net.emplace<rdo::quant::ActQuant>(8);
  net.emplace<rdo::nn::Dense>(16, 10, rng);

  rdo::core::DeployOptions o;
  o.scheme = rdo::core::Scheme::VAWOStarPWT;
  o.offsets.m = 8;
  o.cell = {rdo::rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.4;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 2;
  o.grad_samples = 32;
  o.pwt.epochs = 1;
  o.pwt.max_samples = 64;
  o.seed = 7;

  const rdo::core::SchemeResult res = rdo::core::run_scheme_parallel(
      net, o, ds.train(), ds.test(), /*repeats=*/3);

  rdo::obs::BenchReport rep("determinism_probe", o.seed);
  rep.results()["stats"] = rdo::core::deploy_stats_json(res.stats);
  Json per_cycle = Json::array();
  for (float a : res.per_cycle) per_cycle.push_back(static_cast<double>(a));
  rep.results()["per_cycle"] = std::move(per_cycle);
  rep.recorder().incr("cycles", res.stats.cycles);
  rep.recorder().incr("device_pulses", res.stats.device_pulses);
  rdo::core::add_deploy_phase_times(rep.recorder(), res.stats);
  for (const std::string& e : res.errors) {
    if (!e.empty()) rep.add_failure("trial", e);
  }
  return rep.deterministic_dump();
}

}  // namespace

TEST(Determinism, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = deterministic_report(1);
  const std::string parallel = deterministic_report(8);
  EXPECT_EQ(serial, parallel);
  // Sanity: the probe actually ran the pipeline.
  const Json doc = Json::parse(serial);
  EXPECT_EQ(doc.find("counters")->find("cycles")->as_int(), 3);
  EXPECT_GT(doc.find("counters")->find("device_pulses")->as_int(), 0);
}

TEST(Determinism, TracingDoesNotPerturbTheReport) {
  // Tracing must never feed back into the computation or the report:
  // trace counters go to the trace file, not the recorder, and spans
  // only read the clock. The deterministic sections (which include the
  // counters) must be byte-identical with tracing on and off.
  const std::string untraced = deterministic_report(2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdo_test_obs_trace.json")
          .string();
  rdo::obs::trace_start(path);
  const std::string traced = deterministic_report(2);
  ASSERT_EQ(rdo::obs::trace_stop(), path);
  EXPECT_EQ(traced, untraced);
  std::filesystem::remove(path);
}

TEST(Json, NanAndInfinitySerializeAsNull) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(nan).dump(), "null");
  EXPECT_EQ(Json(inf).dump(), "null");
  EXPECT_EQ(Json(-inf).dump(), "null");
  // Round trip: a document holding non-finite values stays parseable
  // (values come back as JSON null, never as a bogus literal like 1e999).
  Json doc = Json::object();
  doc["nan"] = nan;
  doc["pos_inf"] = inf;
  doc["neg_inf"] = -inf;
  doc["finite"] = 2.5;
  const Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back.find("nan")->is_null());
  EXPECT_TRUE(back.find("pos_inf")->is_null());
  EXPECT_TRUE(back.find("neg_inf")->is_null());
  EXPECT_DOUBLE_EQ(back.find("finite")->as_double(), 2.5);
  EXPECT_EQ(Json::parse(back.dump()).dump(), back.dump());
}

TEST(Recorder, HistogramPlacesSamplesInPowerOfTwoBuckets) {
  rdo::obs::Recorder rec;
  rec.observe("lat", 2e-6);    // 2 us -> bucket 1
  rec.observe("lat", 1e-3);    // 1000 us -> bucket 9
  rec.observe("lat", 1.0);     // 1e6 us -> bucket 19
  rec.observe("lat", 1e-7);    // sub-microsecond clamps to bucket 0
  rec.observe("lat", 1e9);     // beyond the range clamps to the last bucket
  const Json h = rec.histograms_json();
  const Json* lat = h.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 5);
  EXPECT_DOUBLE_EQ(lat->find("min_seconds")->as_double(), 1e-7);
  EXPECT_DOUBLE_EQ(lat->find("max_seconds")->as_double(), 1e9);
  const Json* buckets = lat->find("bucket_counts");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(),
            static_cast<std::size_t>(rdo::obs::kLatencyBuckets));
  std::int64_t total = 0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    total += buckets->at(i).as_int();
  }
  EXPECT_EQ(total, 5);
  EXPECT_EQ(buckets->at(0).as_int(), 1);
  EXPECT_EQ(buckets->at(1).as_int(), 1);
  EXPECT_EQ(buckets->at(9).as_int(), 1);
  EXPECT_EQ(buckets->at(19).as_int(), 1);
  EXPECT_EQ(buckets->at(rdo::obs::kLatencyBuckets - 1).as_int(), 1);
}

TEST(Recorder, HistogramQuantilesAreBucketMidpointsClampedToRange) {
  rdo::obs::Recorder rec;
  // All mass in one bucket: every quantile collapses to the observed
  // value because the midpoint is clamped to [min, max].
  for (int i = 0; i < 100; ++i) rec.observe("tight", 1e-3);
  // Bind the document: find() returns a pointer into it, so calling it
  // on the temporary would dangle (caught by the ASan preset).
  const Json tight_doc = rec.histograms_json();
  const Json* tight = tight_doc.find("tight");
  ASSERT_NE(tight, nullptr);
  EXPECT_DOUBLE_EQ(tight->find("p50_seconds")->as_double(), 1e-3);
  EXPECT_DOUBLE_EQ(tight->find("p95_seconds")->as_double(), 1e-3);
  EXPECT_DOUBLE_EQ(tight->find("p99_seconds")->as_double(), 1e-3);

  // Spread mass: p50 lands on the middle sample's bucket midpoint,
  // p95/p99 on the top bucket; ordering and bounds must hold.
  rec.observe("spread", 2e-6);
  rec.observe("spread", 1e-3);
  rec.observe("spread", 1.0);
  const Json spread_doc = rec.histograms_json();
  const Json* spread = spread_doc.find("spread");
  ASSERT_NE(spread, nullptr);
  const double p50 = spread->find("p50_seconds")->as_double();
  const double p95 = spread->find("p95_seconds")->as_double();
  const double p99 = spread->find("p99_seconds")->as_double();
  EXPECT_DOUBLE_EQ(p50, std::exp2(9.5) * 1e-6);   // bucket 9 midpoint
  EXPECT_DOUBLE_EQ(p95, std::exp2(19.5) * 1e-6);  // bucket 19 midpoint
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, spread->find("min_seconds")->as_double());
  EXPECT_LE(p99, spread->find("max_seconds")->as_double());
}

TEST(BenchReport, HistogramsAreVolatileButValidated) {
  rdo::obs::BenchReport rep("unit_test", 1);
  rep.recorder().observe("trial_seconds", 0.25);
  const Json doc = rep.document();
  std::string err;
  EXPECT_TRUE(rdo::obs::validate_bench_document(doc, &err)) << err;
  ASSERT_NE(doc.find("histograms"), nullptr);
  EXPECT_NE(doc.find("histograms")->find("trial_seconds"), nullptr);
  // Histograms are wall-clock derived, so they are excluded from the
  // deterministic sections.
  EXPECT_EQ(rep.deterministic_dump().find("histograms"), std::string::npos);

  // The validator still accepts v1 documents (no histograms required)...
  Json v1 = rep.document();
  v1["schema_version"] = std::int64_t{1};
  EXPECT_TRUE(rdo::obs::validate_bench_document(v1, &err)) << err;
  // ...but a v2 document with a malformed histograms section fails.
  Json bad = rep.document();
  bad["histograms"] = 5;
  EXPECT_FALSE(rdo::obs::validate_bench_document(bad, &err));
  Json bad_entry = rep.document();
  bad_entry["histograms"]["trial_seconds"]["bucket_counts"] = "nope";
  EXPECT_FALSE(rdo::obs::validate_bench_document(bad_entry, &err));
}

TEST(BenchReport, WriteSurfacesUnusableBenchDirWithPath) {
  // RDO_BENCH_DIR that cannot be created (a path component is a regular
  // file): write() must throw with the offending path in the message,
  // not silently write into the current directory.
  namespace fs = std::filesystem;
  const fs::path blocker =
      fs::temp_directory_path() / "rdo_bench_dir_blocker";
  { std::ofstream f(blocker); }
  const std::string dir = (blocker / "sub").string();
  const char* old = rdo::obs::env_knob("RDO_BENCH_DIR");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("RDO_BENCH_DIR", dir.c_str(), 1);

  rdo::obs::BenchReport rep("unit_test_dir_error", 1);
  try {
    (void)rep.write();
    ADD_FAILURE() << "write() succeeded into an uncreatable RDO_BENCH_DIR";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(dir), std::string::npos)
        << e.what();
  }

  if (old != nullptr) {
    ::setenv("RDO_BENCH_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("RDO_BENCH_DIR");
  }
  fs::remove(blocker);
}
