// Tests for the observability layer (src/obs): JSON round-trips, the
// recorder, BENCH document schema validation, and the end-to-end
// determinism contract — the deterministic sections of a report are
// byte-identical across RDO_THREADS settings for a fixed seed.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/deploy.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/parallel.h"
#include "nn/sequential.h"
#include "obs/env.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "quant/act_quant.h"

using rdo::obs::Json;

namespace {

/// Restores the pool width on scope exit (pattern from test_parallel.cpp).
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) : prev_(rdo::nn::thread_count()) {
    rdo::nn::set_thread_count(n);
  }
  ~ThreadGuard() { rdo::nn::set_thread_count(prev_); }

 private:
  int prev_;
};

Json sample_doc() {
  Json doc = Json::object();
  doc["int"] = std::int64_t{42};
  doc["negative"] = -7;
  doc["pi"] = 3.141592653589793;
  doc["tenth"] = 0.1;
  doc["third"] = 1.0 / 3.0;
  doc["tiny"] = 1.25e-7;
  doc["flag"] = true;
  doc["off"] = false;
  doc["nothing"];  // null
  doc["text"] = "quote \" backslash \\ newline \n tab \t";
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  doc["list"] = std::move(arr);
  Json nested = Json::object();
  nested["a"] = 1;
  nested["b"] = Json::array();
  doc["nested"] = std::move(nested);
  return doc;
}

}  // namespace

TEST(Json, CompactRoundTripIsByteStable) {
  const Json doc = sample_doc();
  const std::string once = doc.dump();
  const Json reparsed = Json::parse(once);
  EXPECT_EQ(reparsed.dump(), once);
}

TEST(Json, PrettyFormParsesToTheSameDocument) {
  const Json doc = sample_doc();
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json doc = Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mid"] = 3;
  EXPECT_EQ(doc.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NumbersKeepTheirTypeThroughAReparse) {
  const Json i = Json::parse("7");
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), 7);
  const Json d = Json::parse("7.0");
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(d.as_double(), 7.0);
  // A dumped Double reparses as Double even for integral values.
  const Json round = Json::parse(Json(2.0).dump());
  EXPECT_TRUE(round.is_double());
}

TEST(Json, DoubleFormattingRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 2.5, 1e-7, 123456789.125,
                   -0.0078125, 3.141592653589793}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v) << Json(v).dump();
  }
}

TEST(Json, UnicodeEscapesParse) {
  const Json j = Json::parse("\"\\u0041\\u0042\"");
  EXPECT_EQ(j.as_string(), "AB");
}

TEST(Json, MalformedInputThrows) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "1 2", "{\"a\":}", "\"unterminated",
        "{\"a\" 1}", "[1 2]", "nul"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\":1}");
  EXPECT_THROW((void)j.as_string(), std::logic_error);
  EXPECT_THROW((void)j.as_int(), std::logic_error);
  EXPECT_EQ(j.find("a")->as_int(), 1);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdo_test_obs.json").string();
  const Json doc = sample_doc();
  rdo::obs::write_json_file(doc, path);
  const Json back = rdo::obs::read_json_file(path);
  EXPECT_EQ(back.dump(), doc.dump());
  std::filesystem::remove(path);
}

TEST(Recorder, AccumulatesPhasesCountersGauges) {
  rdo::obs::Recorder rec;
  rec.add_phase("alpha", 1.5);
  rec.add_phase("alpha", 0.5);
  rec.add_phase("beta", 0.25);
  rec.incr("widgets");
  rec.incr("widgets", 4);
  rec.set_gauge("ratio", 0.75);
  rec.set_gauge("ratio", 0.5);  // last write wins
  EXPECT_DOUBLE_EQ(rec.phase_seconds("alpha"), 2.0);
  EXPECT_DOUBLE_EQ(rec.phase_seconds("beta"), 0.25);
  EXPECT_EQ(rec.counter("widgets"), 5);
  EXPECT_EQ(rec.counters_json().dump(), "{\"widgets\":5}");
  EXPECT_EQ(rec.gauges_json().dump(), "{\"ratio\":0.5}");
  // Phases keep first-use order.
  const Json phases = rec.phases_json();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases.at(0).find("name")->as_string(), "alpha");
}

TEST(BenchReport, DocumentValidatesAgainstSchema) {
  rdo::obs::BenchReport rep("unit_test", 99);
  rep.recorder().incr("things", 3);
  rep.recorder().set_gauge("level", 0.5);
  rep.results()["answer"] = 42;
  const Json doc = rep.document();
  std::string err;
  EXPECT_TRUE(rdo::obs::validate_bench_document(doc, &err)) << err;
  EXPECT_EQ(doc.find("schema_version")->as_int(),
            rdo::obs::kBenchSchemaVersion);
  EXPECT_EQ(doc.find("name")->as_string(), "unit_test");
  EXPECT_EQ(doc.find("env")->find("seed")->as_int(), 99);
  EXPECT_EQ(rep.exit_code(), 0);
}

TEST(BenchReport, ValidationCatchesBrokenDocuments) {
  rdo::obs::BenchReport rep("unit_test", 1);
  std::string err;

  Json wrong_version = rep.document();
  wrong_version["schema_version"] = 999;
  EXPECT_FALSE(rdo::obs::validate_bench_document(wrong_version, &err));

  Json no_name = rep.document();
  no_name["name"] = "";
  EXPECT_FALSE(rdo::obs::validate_bench_document(no_name, &err));

  Json bad_counters = rep.document();
  bad_counters["counters"]["oops"] = "not a number";
  EXPECT_FALSE(rdo::obs::validate_bench_document(bad_counters, &err));

  EXPECT_FALSE(rdo::obs::validate_bench_document(Json::parse("[]"), &err));
}

TEST(BenchReport, FailuresDriveTheExitCode) {
  rdo::obs::BenchReport rep("unit_test", 1);
  EXPECT_EQ(rep.exit_code(), 0);
  rep.add_failure("grid point 3", "boom");
  EXPECT_TRUE(rep.any_failure());
  EXPECT_EQ(rep.failure_count(), 1u);
  EXPECT_EQ(rep.exit_code(), 1);
  std::string err;
  const Json doc = rep.document();
  EXPECT_TRUE(rdo::obs::validate_bench_document(doc, &err)) << err;
  ASSERT_NE(doc.find("failures"), nullptr);
  EXPECT_EQ(doc.find("failures")->at(0).find("what")->as_string(), "boom");
}

TEST(Env, CaptureHasTheContractedKeys) {
  const Json env = rdo::obs::capture_env(7);
  EXPECT_EQ(env.find("seed")->as_int(), 7);
  EXPECT_GE(env.find("threads")->as_int(), 1);
  EXPECT_FALSE(env.find("build_type")->as_string().empty());
  EXPECT_FALSE(env.find("git_sha")->as_string().empty());
}

namespace {

/// Runs a small deployment under `threads` pool threads and returns the
/// deterministic sections of the resulting report.
std::string deterministic_report(int threads) {
  ThreadGuard guard(threads);

  rdo::data::SyntheticSpec spec = rdo::data::mnist_like();
  spec.train_per_class = 20;
  spec.test_per_class = 10;
  const rdo::data::SyntheticDataset ds = rdo::data::make_synthetic(spec);

  const auto make_net = []() -> std::unique_ptr<rdo::nn::Layer> {
    rdo::nn::Rng rng(11);
    auto net = std::make_unique<rdo::nn::Sequential>();
    net->emplace<rdo::nn::Flatten>();
    net->emplace<rdo::quant::ActQuant>(8);
    net->emplace<rdo::nn::Dense>(28 * 28, 16, rng);
    net->emplace<rdo::nn::ReLU>();
    net->emplace<rdo::quant::ActQuant>(8);
    net->emplace<rdo::nn::Dense>(16, 10, rng);
    return net;
  };

  rdo::core::DeployOptions o;
  o.scheme = rdo::core::Scheme::VAWOStarPWT;
  o.offsets.m = 8;
  o.cell = {rdo::rram::CellKind::SLC, 200.0};
  o.variation.sigma = 0.4;
  o.lut_k_sets = 4;
  o.lut_j_cycles = 2;
  o.grad_samples = 32;
  o.pwt.epochs = 1;
  o.pwt.max_samples = 64;
  o.seed = 7;

  const rdo::core::SchemeResult res = rdo::core::run_scheme_parallel(
      make_net, o, ds.train(), ds.test(), /*repeats=*/3);

  rdo::obs::BenchReport rep("determinism_probe", o.seed);
  rep.results()["stats"] = rdo::core::deploy_stats_json(res.stats);
  Json per_cycle = Json::array();
  for (float a : res.per_cycle) per_cycle.push_back(static_cast<double>(a));
  rep.results()["per_cycle"] = std::move(per_cycle);
  rep.recorder().incr("cycles", res.stats.cycles);
  rep.recorder().incr("device_pulses", res.stats.device_pulses);
  rdo::core::add_deploy_phase_times(rep.recorder(), res.stats);
  for (const std::string& e : res.errors) {
    if (!e.empty()) rep.add_failure("trial", e);
  }
  return rep.deterministic_dump();
}

}  // namespace

TEST(Determinism, ReportIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = deterministic_report(1);
  const std::string parallel = deterministic_report(8);
  EXPECT_EQ(serial, parallel);
  // Sanity: the probe actually ran the pipeline.
  const Json doc = Json::parse(serial);
  EXPECT_EQ(doc.find("counters")->find("cycles")->as_int(), 3);
  EXPECT_GT(doc.find("counters")->find("device_pulses")->as_int(), 0);
}
