// Device-level crossbar simulation: programming, VMM, ADC, equivalence
// with the composed-CRW fast path used by the deployment pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "rram/crossbar.h"
#include "rram/programmer.h"

using namespace rdo::rram;
using rdo::nn::Rng;

namespace {

CrossbarConfig small_cfg(CellKind kind = CellKind::SLC, double sigma = 0.0,
                         int rows = 16, int cols = 16, int active = 4) {
  CrossbarConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.cell = {kind, 200.0};
  cfg.variation = {sigma, 0.0};
  cfg.active_wordlines = active;
  return cfg;
}

}  // namespace

TEST(Crossbar, RejectsBadGeometry) {
  CrossbarConfig cfg = small_cfg();
  cfg.active_wordlines = 0;
  EXPECT_THROW(Crossbar{cfg}, std::invalid_argument);
  cfg = small_cfg();
  cfg.active_wordlines = 17;
  EXPECT_THROW(Crossbar{cfg}, std::invalid_argument);
}

TEST(Crossbar, ProgramRejectsWrongCount) {
  Crossbar xb(small_cfg());
  Rng rng(1);
  std::vector<int> too_few(10, 0);
  EXPECT_THROW(xb.program(too_few, rng), std::invalid_argument);
}

TEST(Crossbar, IdealProgramReadsExactStates) {
  CrossbarConfig cfg = small_cfg(CellKind::MLC2);
  Crossbar xb(cfg);
  std::vector<int> states(16 * 16);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i] = static_cast<int>(i % 4);
  }
  xb.program_ideal(states);
  EXPECT_DOUBLE_EQ(xb.cell_value(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(xb.cell_value(0, 3), 3.0);
}

TEST(Crossbar, IdealVmmEqualsIntegerMatrixProduct) {
  CrossbarConfig cfg = small_cfg(CellKind::MLC2);
  Crossbar xb(cfg);
  Rng rng(2);
  std::vector<int> states(16 * 16);
  for (auto& s : states) s = static_cast<int>(rng.uniform_int(0, 3));
  xb.program_ideal(states);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  const auto y = xb.vmm(x);
  for (int c = 0; c < 16; ++c) {
    double expect = 0.0;
    for (int r = 0; r < 16; ++r) {
      expect += x[static_cast<std::size_t>(r)] *
                states[static_cast<std::size_t>(r * 16 + c)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(c)], expect, 1e-9);
  }
}

TEST(Crossbar, VmmInvariantToActivationGrouping) {
  // With an ideal ADC the group-by-group readout must equal the full sum,
  // regardless of how many wordlines are active per cycle.
  CrossbarConfig cfg = small_cfg(CellKind::SLC, 0.7);
  Crossbar xb(cfg);
  Rng rng(3);
  std::vector<int> states(16 * 16);
  for (auto& s : states) s = static_cast<int>(rng.uniform_int(0, 1));
  xb.program(states, rng);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  const auto y4 = xb.vmm(x);
  CrossbarConfig cfg16 = cfg;
  cfg16.active_wordlines = 16;
  Crossbar xb16(cfg16);
  // Re-programming draws new variation; instead copy by programming ideal
  // and comparing through cell values is impossible — so just verify the
  // grouping identity on the same object by changing nothing: compute a
  // manual full-sum reference from cell_value().
  for (int c = 0; c < 16; ++c) {
    double expect = 0.0;
    for (int r = 0; r < 16; ++r) {
      expect += x[static_cast<std::size_t>(r)] * xb.cell_value(r, c);
    }
    EXPECT_NEAR(y4[static_cast<std::size_t>(c)], expect, 1e-9);
  }
}

TEST(Crossbar, CyclesPerVmm) {
  EXPECT_EQ(Crossbar(small_cfg(CellKind::SLC, 0, 16, 16, 4)).cycles_per_vmm(),
            4);
  EXPECT_EQ(Crossbar(small_cfg(CellKind::SLC, 0, 128, 128, 16))
                .cycles_per_vmm(),
            8);
  EXPECT_EQ(Crossbar(small_cfg(CellKind::SLC, 0, 15, 16, 4)).cycles_per_vmm(),
            4);
}

TEST(Crossbar, VmmRejectsWrongInputLength) {
  Crossbar xb(small_cfg());
  std::vector<double> x(5, 1.0);
  EXPECT_THROW(xb.vmm(x), std::invalid_argument);
}

TEST(Crossbar, AdcQuantizationCoarsensOutput) {
  CrossbarConfig cfg = small_cfg(CellKind::SLC, 0.0);
  cfg.adc_bits = 2;  // 3 levels over full scale 4
  Crossbar xb(cfg);
  std::vector<int> states(16 * 16, 0);
  states[0] = 1;  // only cell (0,0) set
  xb.program_ideal(states);
  std::vector<double> x(16, 0.0);
  x[0] = 0.4;  // partial sum 0.4 of full-scale 4 -> quantizes to 1/3*4
  const auto y = xb.vmm(x);
  EXPECT_NEAR(y[0], 4.0 / 3.0 * std::round(0.4 / 4.0 * 3.0) , 1e-9);
}

TEST(Crossbar, IdealAdcBitsZeroIsExact) {
  CrossbarConfig cfg = small_cfg(CellKind::SLC, 0.0);
  cfg.adc_bits = 0;
  Crossbar xb(cfg);
  std::vector<int> states(16 * 16, 1);
  xb.program_ideal(states);
  std::vector<double> x(16, 0.137);
  const auto y = xb.vmm(x);
  EXPECT_NEAR(y[0], 0.137 * 16, 1e-9);
}

TEST(Crossbar, TotalReadPowerCountsStates) {
  CrossbarConfig cfg = small_cfg(CellKind::SLC, 0.0, 4, 4, 4);
  Crossbar xb(cfg);
  std::vector<int> all_on(16, 1);
  std::vector<int> all_off(16, 0);
  xb.program_ideal(all_on);
  const double p_on = xb.total_read_power();
  xb.program_ideal(all_off);
  const double p_off = xb.total_read_power();
  EXPECT_NEAR(p_on / p_off, 200.0, 1e-9);  // ON/OFF ratio
}

TEST(Crossbar, EquivalenceWithComposedCrwPath) {
  // The deployment pipeline composes CRWs via WeightProgrammer instead of
  // simulating every cell in a Crossbar. Verify the two paths agree: a
  // weight sliced across columns read by the crossbar, radix-recombined,
  // equals WeightProgrammer::compose of the same cell values.
  const CellModel cell{CellKind::MLC2, 200.0};
  WeightProgrammer prog(cell, 8, {0.5, 0.0});
  CrossbarConfig cfg = small_cfg(CellKind::MLC2, 0.5, 4, 4, 4);
  Crossbar xb(cfg);
  const int v = 0xA7;
  const auto cells = prog.slice(v);
  std::vector<int> states(16, 0);
  for (int k = 0; k < 4; ++k) states[static_cast<std::size_t>(k)] = cells[static_cast<std::size_t>(k)];
  Rng rng(9);
  xb.program(states, rng);
  // Read the four cells of row 0 and recombine.
  std::vector<double> vals(4);
  for (int k = 0; k < 4; ++k) vals[static_cast<std::size_t>(k)] = xb.cell_value(0, k);
  const double crw = prog.compose(vals);
  // Cross-check against a VMM with a one-hot input on row 0.
  std::vector<double> x(4, 0.0);
  x[0] = 1.0;
  const auto y = xb.vmm(x);
  double recombined = 0.0, radix = 1.0;
  for (int k = 0; k < 4; ++k) {
    recombined += radix * y[static_cast<std::size_t>(k)];
    radix *= 4.0;
  }
  EXPECT_NEAR(crw, recombined, 1e-9);
}

class AdcResolutionSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdcResolutionSweep, ErrorShrinksWithResolution) {
  // Quantization error of the group ADC must decrease monotonically with
  // resolution and vanish for an ideal ADC.
  const int bits = GetParam();
  CrossbarConfig cfg = small_cfg(CellKind::MLC2, 0.0);
  Crossbar ideal_xb(cfg);
  cfg.adc_bits = bits;
  Crossbar adc_xb(cfg);
  Rng rng(42);
  std::vector<int> states(16 * 16);
  for (auto& s : states) s = static_cast<int>(rng.uniform_int(0, 3));
  ideal_xb.program_ideal(states);
  adc_xb.program_ideal(states);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  const auto y_ideal = ideal_xb.vmm(x);
  const auto y_adc = adc_xb.vmm(x);
  // Max per-group quantization error: half an ADC step per group, 4 groups.
  const double full_scale = 4.0 * 3.0;
  const double step = full_scale / ((1 << bits) - 1);
  for (int c = 0; c < 16; ++c) {
    EXPECT_LE(std::fabs(y_adc[static_cast<std::size_t>(c)] -
                        y_ideal[static_cast<std::size_t>(c)]),
              4 * (0.5 * step) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcResolutionSweep,
                         ::testing::Values(4, 6, 8, 10));

TEST(Crossbar, VariationChangesAcrossProgrammingCycles) {
  CrossbarConfig cfg = small_cfg(CellKind::SLC, 0.5);
  Crossbar xb(cfg);
  Rng rng(10);
  std::vector<int> states(16 * 16, 1);
  xb.program(states, rng);
  const double v1 = xb.cell_value(0, 0);
  xb.program(states, rng);
  const double v2 = xb.cell_value(0, 0);
  EXPECT_NE(v1, v2);  // cycle-to-cycle variation
}
