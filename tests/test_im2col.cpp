// im2col / col2im correctness and adjointness.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/im2col.h"
#include "nn/rng.h"

using namespace rdo::nn;

TEST(Im2Col, OutDim) {
  EXPECT_EQ(conv_out_dim(28, 5, 1, 2), 28);
  EXPECT_EQ(conv_out_dim(28, 5, 1, 0), 24);
  EXPECT_EQ(conv_out_dim(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_dim(4, 4, 1, 0), 1);
}

TEST(Im2Col, IdentityKernel1x1) {
  // 1x1 kernel, stride 1, no pad: cols is just the channel-major pixels.
  const std::int64_t c = 2, h = 2, w = 2;
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> cols(static_cast<std::size_t>(h * w * c));
  im2col(img.data(), c, h, w, 1, 1, 1, 0, cols.data());
  // Row p = pixel p, entries = [ch0, ch1].
  EXPECT_FLOAT_EQ(cols[0], 1.0f);
  EXPECT_FLOAT_EQ(cols[1], 5.0f);
  EXPECT_FLOAT_EQ(cols[6], 4.0f);
  EXPECT_FLOAT_EQ(cols[7], 8.0f);
}

TEST(Im2Col, KnownSmallCase) {
  // 1 channel 3x3, k=2, stride 1, no pad => 4 positions x 4 elements.
  std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(16);
  im2col(img.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  const std::vector<float> expect{1, 2, 4, 5, 2, 3, 5, 6,
                                  4, 5, 7, 8, 5, 6, 8, 9};
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(cols[i], expect[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  std::vector<float> img{1, 2, 3, 4};  // 1x2x2
  const std::int64_t oh = conv_out_dim(2, 3, 1, 1);
  std::vector<float> cols(static_cast<std::size_t>(oh * oh * 9));
  im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
  // Position (0,0): top-left of the 3x3 window hangs over the pad.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);  // (-1,-1)
  EXPECT_FLOAT_EQ(cols[4], 1.0f);  // center = pixel (0,0)
}

class Im2ColAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Im2ColAdjoint, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // that makes the conv backward pass correct.
  const auto [c, h, k, stride, pad] = GetParam();
  const std::int64_t w = h;
  const std::int64_t oh = conv_out_dim(h, k, stride, pad);
  const std::int64_t ow = conv_out_dim(w, k, stride, pad);
  const std::int64_t cols_size = oh * ow * c * k * k;
  Rng rng(static_cast<std::uint64_t>(c * 100 + h * 10 + k));

  std::vector<float> x(static_cast<std::size_t>(c * h * w));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> y(static_cast<std::size_t>(cols_size));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> cols(static_cast<std::size_t>(cols_size));
  im2col(x.data(), c, h, w, k, k, stride, pad, cols.data());
  std::vector<float> xg(x.size(), 0.0f);
  col2im(y.data(), c, h, w, k, k, stride, pad, xg.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * xg[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColAdjoint,
    ::testing::Values(std::make_tuple(1, 5, 3, 1, 0),
                      std::make_tuple(2, 6, 3, 1, 1),
                      std::make_tuple(3, 8, 3, 2, 1),
                      std::make_tuple(1, 7, 5, 1, 2),
                      std::make_tuple(4, 4, 1, 1, 0),
                      std::make_tuple(2, 9, 3, 3, 0)));

TEST(Col2Im, AccumulatesOverlaps) {
  // k=2, stride 1 on 3x3: center pixel participates in all 4 windows.
  const std::int64_t oh = 2, ow = 2;
  std::vector<float> cols(static_cast<std::size_t>(oh * ow * 4), 1.0f);
  std::vector<float> grad(9, 0.0f);
  col2im(cols.data(), 1, 3, 3, 2, 2, 1, 0, grad.data());
  EXPECT_FLOAT_EQ(grad[4], 4.0f);  // center
  EXPECT_FLOAT_EQ(grad[0], 1.0f);  // corner
  EXPECT_FLOAT_EQ(grad[1], 2.0f);  // edge
}
