// Parameter save/load round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/serialize.h"

using namespace rdo::nn;

namespace {

Sequential make_net(std::uint64_t seed) {
  Rng rng(seed);
  Sequential s;
  s.emplace<Dense>(4, 8, rng);
  s.emplace<ReLU>();
  s.emplace<Dense>(8, 3, rng);
  return s;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

}  // namespace

TEST(Serialize, RoundTripRestoresWeights) {
  Sequential a = make_net(1);
  const std::string path = temp_path("roundtrip.bin");
  save_params(a, path);

  Sequential b = make_net(2);  // different init
  ASSERT_TRUE(load_params(b, path));
  const auto pa = a.params(), pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
  Sequential a = make_net(1);
  EXPECT_FALSE(load_params(a, temp_path("does_not_exist.bin")));
}

TEST(Serialize, MismatchedNetworkThrows) {
  Sequential a = make_net(1);
  const std::string path = temp_path("mismatch.bin");
  save_params(a, path);

  Rng rng(3);
  Sequential c;
  c.emplace<Dense>(4, 8, rng);  // fewer params than saved
  EXPECT_THROW(load_params(c, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MismatchedShapeThrows) {
  Sequential a = make_net(1);
  const std::string path = temp_path("shape.bin");
  save_params(a, path);

  Rng rng(3);
  Sequential c;
  c.emplace<Dense>(4, 9, rng);  // wrong width
  c.emplace<ReLU>();
  c.emplace<Dense>(9, 3, rng);
  EXPECT_THROW(load_params(c, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, BatchNormRunningStatsRoundTrip) {
  // Running statistics are buffers, not params; a loaded model must
  // evaluate identically — this is the regression that silently poisoned
  // cached ResNets before buffers were serialized.
  Rng rng(7);
  Sequential a;
  a.emplace<rdo::nn::Conv2D>(1, 2, 3, 1, 1, rng);
  a.emplace<rdo::nn::BatchNorm2D>(2);
  // Push the running stats away from their init by training forwards.
  for (int i = 0; i < 10; ++i) {
    Tensor x({4, 1, 4, 4});
    x.uniform_init(rng, -2.0f, 5.0f);
    (void)a.forward(x, /*train=*/true);
  }
  const std::string path = temp_path("bn_buffers.bin");
  save_params(a, path);

  Rng rng2(8);
  Sequential b;
  b.emplace<rdo::nn::Conv2D>(1, 2, 3, 1, 1, rng2);
  b.emplace<rdo::nn::BatchNorm2D>(2);
  ASSERT_TRUE(load_params(b, path));

  Tensor probe({2, 1, 4, 4});
  probe.uniform_init(rng, 0.0f, 1.0f);
  Tensor ya = a.forward(probe, /*train=*/false);
  Tensor yb = b.forward(probe, /*train=*/false);
  for (std::int64_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, SaveToUnwritablePathThrows) {
  Sequential a = make_net(1);
  EXPECT_THROW(save_params(a, "/nonexistent_dir_xyz/params.bin"),
               std::runtime_error);
}
