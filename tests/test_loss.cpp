// Softmax cross-entropy: values, gradients, accuracy counting.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

using namespace rdo::nn;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.0f;
  EXPECT_NEAR(loss.forward(logits, {1}), 0.0f, 1e-5f);
  EXPECT_EQ(loss.correct(), 1);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 0) = 20.0f;
  EXPECT_GT(loss.forward(logits, {2}), 10.0f);
  EXPECT_EQ(loss.correct(), 0);
}

TEST(SoftmaxCrossEntropy, ShiftInvariance) {
  SoftmaxCrossEntropy loss;
  Tensor a({1, 3});
  a.at(0, 0) = 1.0f;
  a.at(0, 1) = 2.0f;
  a.at(0, 2) = 3.0f;
  const float l1 = loss.forward(a, {2});
  for (std::int64_t i = 0; i < 3; ++i) a[i] += 100.0f;
  const float l2 = loss.forward(a, {2});
  EXPECT_NEAR(l1, l2, 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  Rng rng(21);
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const std::vector<int> labels{2, 0};
  loss.forward(logits, labels);
  Tensor g = loss.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = loss.forward(logits, labels);
    logits[i] = orig - static_cast<float>(eps);
    const double lm = loss.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(g[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 5});
  Rng rng(22);
  for (std::int64_t i = 0; i < 5; ++i) {
    logits[i] = static_cast<float>(rng.uniform(-2, 2));
  }
  loss.forward(logits, {3});
  Tensor g = loss.backward();
  double s = 0.0;
  for (std::int64_t i = 0; i < 5; ++i) s += g[i];
  EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, CountsCorrectAcrossBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({3, 2});
  logits.at(0, 0) = 1.0f;  // pred 0
  logits.at(1, 1) = 1.0f;  // pred 1
  logits.at(2, 0) = 1.0f;  // pred 0
  loss.forward(logits, {0, 1, 1});
  EXPECT_EQ(loss.correct(), 2);
}

TEST(SoftmaxCrossEntropy, RejectsShapeMismatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  EXPECT_THROW(loss.forward(logits, {0}), std::invalid_argument);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForExtremeLogits) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2});
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = -1000.0f;
  const float l = loss.forward(logits, {0});
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, 0.0f, 1e-5f);
}
